package server

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/client"
	"repro/internal/durable"
	"repro/internal/proto"
)

// newTestDB returns an in-memory durable DB with no background
// checkpointer, so tests control every commit.
func newTestDB(t *testing.T, shards int) *durable.DB {
	t.Helper()
	db, err := durable.Open("db", &durable.Options{
		Shards: shards, Seed: 42, NoBackground: true, FS: durable.NewMemFS(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// startTCP serves a new server over db on a loopback listener and
// returns its address plus a stopper.
func startTCP(t *testing.T, db *durable.DB, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(db, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return srv, ln.Addr().String()
}

// exerciseFullAPI drives every opcode through c against a fresh DB.
func exerciseFullAPI(t *testing.T, c *client.Conn) {
	t.Helper()
	if err := c.Ping([]byte("hello")); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if ins, err := c.Put(1, 100); err != nil || !ins {
		t.Fatalf("put: %v %v", ins, err)
	}
	if ins, err := c.Put(1, 101); err != nil || ins {
		t.Fatalf("overwrite put: %v %v", ins, err)
	}
	if v, ok, err := c.Get(1); err != nil || !ok || v != 101 {
		t.Fatalf("get: %d %v %v", v, ok, err)
	}
	if _, ok, err := c.Get(2); err != nil || ok {
		t.Fatalf("get absent: %v %v", ok, err)
	}
	if n, err := c.PutBatch([]client.Item{{Key: 2, Val: 200}, {Key: 3, Val: 300}, {Key: 1, Val: 110}}); err != nil || n != 2 {
		t.Fatalf("put batch: %d %v", n, err)
	}
	vals, ok, err := c.GetBatch([]int64{1, 2, 9})
	if err != nil || vals[0] != 110 || vals[1] != 200 || !ok[0] || !ok[1] || ok[2] {
		t.Fatalf("get batch: %v %v %v", vals, ok, err)
	}
	items, more, err := c.Range(0, 1000, 0)
	if err != nil || more || len(items) != 3 || items[0].Key != 1 || items[2].Key != 3 {
		t.Fatalf("range: %v %v %v", items, more, err)
	}
	// A capped range truncates and says so.
	items, more, err = c.Range(0, 1000, 2)
	if err != nil || !more || len(items) != 2 {
		t.Fatalf("capped range: %v %v %v", items, more, err)
	}
	if n, err := c.Len(); err != nil || n != 3 {
		t.Fatalf("len: %d %v", n, err)
	}
	if del, err := c.Delete(3); err != nil || !del {
		t.Fatalf("delete: %v %v", del, err)
	}
	if del, err := c.Delete(3); err != nil || del {
		t.Fatalf("re-delete: %v %v", del, err)
	}
	if n, err := c.DeleteBatch([]int64{1, 2, 3}); err != nil || n != 2 {
		t.Fatalf("delete batch: %d %v", n, err)
	}
	if cps, err := c.Checkpoint(); err != nil || cps == 0 {
		t.Fatalf("checkpoint: %d %v", cps, err)
	}
}

// TestServeConnOverPipe drives the full API through net.Pipe — no
// sockets, pure protocol + dispatch.
func TestServeConnOverPipe(t *testing.T) {
	db := newTestDB(t, 4)
	defer db.Close()
	srv := New(db, Config{ReadTimeout: -1})
	cliEnd, srvEnd := net.Pipe()
	srv.ServeConn(srvEnd)
	c := client.NewConn(cliEnd)
	exerciseFullAPI(t, c)
	c.Close()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestServeTCP drives the full API over a real loopback socket.
func TestServeTCP(t *testing.T) {
	db := newTestDB(t, 4)
	defer db.Close()
	srv, addr := startTCP(t, db, Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	exerciseFullAPI(t, c)
	c.Close()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.ConnsAccepted != 1 || st.Requests == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestPipelinedReadYourWrites checks program order on one connection:
// many puts issued concurrently (pipelined through the coalescer),
// then gets that must observe them.
func TestPipelinedReadYourWrites(t *testing.T) {
	db := newTestDB(t, 8)
	defer db.Close()
	srv, addr := startTCP(t, db, Config{})
	defer srv.Close()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 200
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(k int64) {
			_, err := c.Put(k, k*10)
			errs <- err
		}(int64(i))
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < n; i++ {
		if v, ok, err := c.Get(i); err != nil || !ok || v != i*10 {
			t.Fatalf("get %d: %d %v %v", i, v, ok, err)
		}
	}
	// The coalescer must have batched at least some of those 200
	// concurrent single puts into shared ApplyBatch calls.
	st := srv.Stats()
	if st.WriteBatched != n {
		t.Fatalf("WriteBatched = %d, want %d", st.WriteBatched, n)
	}
	if st.WriteBatches >= n {
		t.Fatalf("no coalescing: %d batches for %d writes", st.WriteBatches, n)
	}
	if st.WriteMaxBatch < 2 {
		t.Fatalf("WriteMaxBatch = %d", st.WriteMaxBatch)
	}
}

// TestConnLimit checks that a connection over MaxConns is refused with
// an ErrCodeBusy error frame.
func TestConnLimit(t *testing.T) {
	db := newTestDB(t, 4)
	defer db.Close()
	srv, addr := startTCP(t, db, Config{MaxConns: 1})
	defer srv.Close()

	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if err := c1.Ping(nil); err != nil { // ensure c1 is fully admitted
		t.Fatal(err)
	}

	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	err = c2.Ping(nil)
	var re *proto.RemoteError
	if !errors.As(err, &re) || re.Code != proto.ErrCodeBusy {
		t.Fatalf("second conn: %v, want ErrCodeBusy", err)
	}

	// Closing the first connection frees the slot.
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c3, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		err = c3.Ping(nil)
		c3.Close()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestIdleReadTimeout checks that a silent connection is dropped.
func TestIdleReadTimeout(t *testing.T) {
	db := newTestDB(t, 4)
	defer db.Close()
	srv, addr := startTCP(t, db, Config{ReadTimeout: 50 * time.Millisecond})
	defer srv.Close()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("idle connection still open after read timeout")
	}
}

// TestHostileFrames checks the server's reaction to protocol garbage:
// an error frame (where the stream is still framed) and a close, with
// the store unharmed.
func TestHostileFrames(t *testing.T) {
	db := newTestDB(t, 4)
	defer db.Close()
	srv, addr := startTCP(t, db, Config{})
	defer srv.Close()

	// Bad version byte.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	proto.WriteFrame(nc, proto.Frame{Ver: 99, Op: proto.OpLen, ID: 7})
	f, err := proto.ReadFrame(nc, 0)
	if err != nil {
		t.Fatalf("no reply to bad version: %v", err)
	}
	if f.Op != proto.OpError {
		t.Fatalf("reply op %s", proto.OpName(f.Op))
	}
	if code, _, _ := proto.DecodeError(f.Payload); code != proto.ErrCodeVersion {
		t.Fatalf("code %s", proto.ErrCodeName(code))
	}
	nc.Close()

	// Unknown opcode: error reply, but the connection survives.
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	proto.WriteFrame(c, proto.Frame{Ver: proto.Version, Op: 0x6E, ID: 1})
	proto.WriteFrame(c, proto.Frame{Ver: proto.Version, Op: proto.OpPing, ID: 2})
	f1, err := proto.ReadFrame(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := proto.ReadFrame(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f1.Op != proto.OpError || f1.ID != 1 {
		t.Fatalf("unknown-op reply: %s id %d", proto.OpName(f1.Op), f1.ID)
	}
	if f2.Op != proto.OpPing|proto.FlagReply || f2.ID != 2 {
		t.Fatalf("ping after unknown op: %s id %d", proto.OpName(f2.Op), f2.ID)
	}

	// A malformed payload gets an error reply; the stream continues.
	proto.WriteFrame(c, proto.Frame{Ver: proto.Version, Op: proto.OpGet, ID: 3, Payload: []byte{1, 2}})
	f3, err := proto.ReadFrame(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f3.Op != proto.OpError || f3.ID != 3 {
		t.Fatalf("bad payload reply: %s id %d", proto.OpName(f3.Op), f3.ID)
	}

	// An oversized frame kills the connection with ErrCodeTooLarge.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := c.Write(huge); err != nil {
		t.Fatal(err)
	}
	f4, err := proto.ReadFrame(c, 0)
	if err == nil {
		if f4.Op != proto.OpError {
			t.Fatalf("oversized frame reply: %s", proto.OpName(f4.Op))
		}
		if code, _, _ := proto.DecodeError(f4.Payload); code != proto.ErrCodeTooLarge {
			t.Fatalf("code %s", proto.ErrCodeName(code))
		}
	}
}

// TestReplySizeCaps checks that requests whose replies would exceed
// the frame payload cap are refused with ErrCodeTooLarge instead of
// the server emitting an unreadable frame.
func TestReplySizeCaps(t *testing.T) {
	db := newTestDB(t, 4)
	defer db.Close()
	srv, addr := startTCP(t, db, Config{})
	defer srv.Close()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// An over-cap batch-get fits the request frame but not the reply.
	keys := make([]int64, proto.MaxBatchGet+1)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := proto.WriteFrame(nc, proto.Frame{
		Ver: proto.Version, Op: proto.OpBatch, ID: 5,
		Payload: proto.AppendBatchKeys(nil, proto.BatchGet, keys),
	}); err != nil {
		t.Fatal(err)
	}
	f, err := proto.ReadFrame(nc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Op != proto.OpError || f.ID != 5 {
		t.Fatalf("over-cap batch-get reply: %s id %d", proto.OpName(f.Op), f.ID)
	}
	if code, _, _ := proto.DecodeError(f.Payload); code != proto.ErrCodeTooLarge {
		t.Fatalf("code %s", proto.ErrCodeName(code))
	}
	// The stock client refuses to send it at all.
	if _, _, err := c.GetBatch(keys); err == nil {
		t.Fatal("client sent an over-cap batch-get")
	}

	// A configured range cap above the protocol bound is clamped.
	if got := (Config{MaxRangeItems: 1 << 30}).withDefaults().MaxRangeItems; got != proto.MaxRangeItems {
		t.Fatalf("MaxRangeItems clamped to %d, want %d", got, proto.MaxRangeItems)
	}
}

// TestGracefulShutdown checks that Shutdown answers in-flight requests,
// refuses new connections, and commits a final checkpoint.
func TestGracefulShutdown(t *testing.T) {
	db := newTestDB(t, 4)
	defer db.Close()
	srv, addr := startTCP(t, db, Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := int64(0); i < 100; i++ {
		if _, err := c.Put(i, i); err != nil {
			t.Fatal(err)
		}
	}
	cpsBefore := db.Checkpoints()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if db.Checkpoints() != cpsBefore+1 {
		t.Fatalf("checkpoints %d -> %d, want final checkpoint", cpsBefore, db.Checkpoints())
	}
	if db.PendingOps() != 0 {
		t.Fatalf("%d pending ops after graceful shutdown", db.PendingOps())
	}
	if err := db.VerifyCanonical(); err != nil {
		t.Fatal(err)
	}
	// The listener is gone.
	if c2, err := client.Dial(addr); err == nil {
		if err := c2.Ping(nil); err == nil {
			t.Fatal("server still serving after Shutdown")
		}
		c2.Close()
	}
}

// TestForceClose checks that Close severs connections without a final
// checkpoint — the crash the durable layer absorbs.
func TestForceClose(t *testing.T) {
	db := newTestDB(t, 4)
	defer db.Close()
	srv, addr := startTCP(t, db, Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Put(1, 1); err != nil {
		t.Fatal(err)
	}
	cps := db.Checkpoints()
	srv.Close()
	if db.Checkpoints() != cps {
		t.Fatal("force close committed a checkpoint")
	}
	if _, _, err := c.Get(1); err == nil {
		t.Fatal("connection survived force close")
	}
}
