package server

import (
	"sync/atomic"
	"time"
)

// stats holds the server's hot-path counters. Everything is atomic so
// the handlers never synchronize just to count.
type stats struct {
	connsAccepted atomic.Uint64
	connsRejected atomic.Uint64
	connsActive   atomic.Int64
	requests      atomic.Uint64
	reads         atomic.Uint64 // GET, batch-get, RANGE, LEN
	writes        atomic.Uint64 // PUT, DEL, batch-put/del entries
	errors        atomic.Uint64 // error frames sent
	wBatches      atomic.Uint64 // coalescer drains applied
	wBatchedOps   atomic.Uint64 // write ops that went through the coalescer
	wMaxBatch     atomic.Uint64 // largest single coalesced batch
	wExtends      atomic.Uint64 // adaptive-window drain extensions that found more work
	bytesIn       atomic.Uint64
	bytesOut      atomic.Uint64

	readOnlyRejected atomic.Uint64 // writes refused because this node is a replica
	syncHashes       atomic.Uint64 // SHARDHASH requests served
	syncChunks       atomic.Uint64 // SYNC chunk requests served
	syncBytesOut     atomic.Uint64 // image bytes shipped to replicas

	sweeps atomic.Uint64 // epoch sweeps that found candidates and submitted expire ops

	// Namespace traffic, deliberately aggregate-only: counts, never
	// tenant names — telemetry must not become a tenant roster.
	nsOps           atomic.Uint64 // namespaced requests dispatched (all five opcodes)
	nsQuotaRejected atomic.Uint64 // NSPUTs refused at the per-tenant quota
	nsDrops         atomic.Uint64 // DROPNS requests processed (existent or not)
}

func (s *stats) noteBatch(n int) {
	s.wBatches.Add(1)
	s.wBatchedOps.Add(uint64(n))
	for {
		old := s.wMaxBatch.Load()
		if uint64(n) <= old || s.wMaxBatch.CompareAndSwap(old, uint64(n)) {
			return
		}
	}
}

// Stats is a point-in-time snapshot of the server's counters, shaped
// for expvar publication (every field marshals to JSON).
type Stats struct {
	Role          string `json:"role"` // "primary" or "replica"
	ConnsAccepted uint64 `json:"conns_accepted"`
	ConnsRejected uint64 `json:"conns_rejected"`
	ConnsActive   int64  `json:"conns_active"`
	Requests      uint64 `json:"requests"`
	Reads         uint64 `json:"reads"`
	Writes        uint64 `json:"writes"`
	Errors        uint64 `json:"errors"`
	WriteBatches  uint64 `json:"write_batches"`
	WriteBatched  uint64 `json:"write_batched_ops"`
	WriteMaxBatch uint64 `json:"write_max_batch"`
	WriteExtends  uint64 `json:"write_window_extends"`
	BytesIn       uint64 `json:"bytes_in"`
	BytesOut      uint64 `json:"bytes_out"`

	// KeysPhysical counts entries physically present in the shards —
	// including TTL-expired entries the sweeper has not removed yet —
	// summed one brief per-shard lock at a time (no atomic cut).
	// KeysLogical counts live keys at an atomic cut: expired entries
	// are excluded even before they are swept. Under TTL load the two
	// legitimately disagree; the gap is the sweep backlog, and reporting
	// it as a single "keys" number hid real behavior.
	KeysPhysical int `json:"keys_physical"`
	KeysLogical  int `json:"keys_logical"`

	Checkpoints uint64 `json:"checkpoints"`
	PendingOps  uint64 `json:"pending_ops"`

	ReadOnlyRejected uint64 `json:"read_only_rejected"`
	SyncHashes       uint64 `json:"sync_hashes"`
	SyncChunks       uint64 `json:"sync_chunks"`
	SyncBytesOut     uint64 `json:"sync_bytes_out"`
	// Promotions counts replica-to-primary promotions of this process
	// (in-memory only — a restart forgets them, by design: persisted
	// election history would break history independence).
	Promotions uint64 `json:"promotions"`

	// TTL expiry. Epoch is the database's current epoch (unix seconds
	// under the default clock); SweptKeys counts expired entries
	// physically removed since Open (wire sweeps and checkpoint sweeps
	// alike); Sweeps counts epoch sweeps that found candidates and
	// submitted expire ops (a candidate resurrected before its op
	// applies is counted here but not in SweptKeys — the ops are
	// conditional by design).
	Epoch         int64   `json:"epoch"`
	SweptKeys     uint64  `json:"swept_keys"`
	Sweeps        uint64  `json:"sweeps"`
	UptimeSeconds float64 `json:"uptime_seconds"`

	// Namespaces is the live tenant count (cells with at least one live
	// key); the traffic counters are aggregates across all tenants. No
	// per-tenant breakdown is published here by design — tenant names
	// stay off every telemetry surface (LISTNS, an authenticated data
	// op, is the only way to enumerate them).
	Namespaces      int    `json:"namespaces"`
	NSOps           uint64 `json:"ns_ops"`
	NSQuotaRejected uint64 `json:"ns_quota_rejected"`
	NSDrops         uint64 `json:"ns_drops"`
}

// Stats returns a snapshot of the server's counters plus the durable
// layer's key counts, committed checkpoints, and uncheckpointed-op
// window. It is safe to call at any time, including during shutdown,
// and cheap enough to scrape: the physical count sums the shards one
// brief lock at a time (a consistent-enough reading for monitoring);
// the logical count pays DB.Len's atomic cut to exclude expired
// entries. See the KeysPhysical/KeysLogical field docs.
func (s *Server) Stats() Stats {
	role := "primary"
	if s.readOnly.Load() {
		role = "replica"
	}
	return Stats{
		Role:          role,
		ConnsAccepted: s.st.connsAccepted.Load(),
		ConnsRejected: s.st.connsRejected.Load(),
		ConnsActive:   s.st.connsActive.Load(),
		Requests:      s.st.requests.Load(),
		Reads:         s.st.reads.Load(),
		Writes:        s.st.writes.Load(),
		Errors:        s.st.errors.Load(),
		WriteBatches:  s.st.wBatches.Load(),
		WriteBatched:  s.st.wBatchedOps.Load(),
		WriteMaxBatch: s.st.wMaxBatch.Load(),
		WriteExtends:  s.st.wExtends.Load(),
		BytesIn:       s.st.bytesIn.Load(),
		BytesOut:      s.st.bytesOut.Load(),
		KeysPhysical:  physicalLen(s.db),
		KeysLogical:   s.db.Store().Len(),
		Checkpoints:   s.db.Checkpoints(),
		PendingOps:    s.db.PendingOps(),

		ReadOnlyRejected: s.st.readOnlyRejected.Load(),
		SyncHashes:       s.st.syncHashes.Load(),
		SyncChunks:       s.st.syncChunks.Load(),
		SyncBytesOut:     s.st.syncBytesOut.Load(),
		Promotions:       s.promotions.Load(),

		Epoch:         s.db.Epoch(),
		SweptKeys:     s.db.SweptKeys(),
		Sweeps:        s.st.sweeps.Load(),
		UptimeSeconds: time.Since(s.start).Seconds(),

		Namespaces:      s.db.NamespaceCount(),
		NSOps:           s.st.nsOps.Load(),
		NSQuotaRejected: s.st.nsQuotaRejected.Load(),
		NSDrops:         s.st.nsDrops.Load(),
	}
}
