package server

// End-to-end tracing tests: a traced client over net.Pipe against a
// traced server, proving the wire-propagated trace context stitches
// one span tree across the process boundary — client root, the
// server's five phases, the coalescer batch, and (for the erasure
// barriers) the durable layer's checkpoint span. The cross-node half —
// a replica's sync round correlating to the primary's checkpoint span
// by manifest-hash link — lives in internal/replica's trace test (the
// replica package imports this one).

import (
	"net"
	"testing"
	"time"

	"repro/client"
	"repro/internal/proto"
	"repro/internal/trace"
)

// spansOf polls the store until pred is satisfied by the trace's span
// set (some spans — the flush span — are recorded on the writer
// goroutine after the reply is already in the client's hands).
func spansOf(t *testing.T, tr *trace.Store, tid uint64, pred func([]trace.Span) bool) []trace.Span {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		sps := tr.ByTrace(tid)
		if pred(sps) {
			return sps
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %x never satisfied the predicate; have %d spans: %+v", tid, len(sps), sps)
		}
		time.Sleep(time.Millisecond)
	}
}

// one returns the single span of the given kind, failing on zero or
// several.
func one(t *testing.T, sps []trace.Span, k trace.Kind) trace.Span {
	t.Helper()
	var found []trace.Span
	for _, sp := range sps {
		if sp.Kind == k {
			found = append(found, sp)
		}
	}
	if len(found) != 1 {
		t.Fatalf("want exactly one %v span, have %d in %+v", k, len(found), sps)
	}
	return found[0]
}

func hasKind(sps []trace.Span, k trace.Kind) bool {
	for _, sp := range sps {
		if sp.Kind == k {
			return true
		}
	}
	return false
}

// clientSpanFor polls for the client root span of op and returns it.
func clientSpanFor(t *testing.T, tr *trace.Store, op byte) trace.Span {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, sp := range tr.Snapshot() {
			if sp.Kind == trace.KindClient && sp.Op == op {
				return sp
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no client span for op %#x ever recorded", op)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTraceStitchedSpanTree drives a traced client over net.Pipe and
// asserts the full cross-process span tree: the PUT trace holds the
// client root, the server root parented under it, all five phases
// (decode, coalesce_wait, apply, encode, flush) plus the coalescer
// batch span; the DROPNS trace additionally holds the erasure barrier
// and the durable checkpoint span that committed it, link-stamped with
// the manifest hash; and an explicit CHECKPOINT parents the durable
// span under the request the same way.
func TestTraceStitchedSpanTree(t *testing.T) {
	db := newTestDB(t, 4)
	defer db.Abandon()
	tr := trace.NewStore(4096, 1, nil) // sample everything
	srv := New(db, Config{SweepInterval: -1, Trace: tr})
	defer srv.Close()

	nc, sc := net.Pipe()
	srv.ServeConn(sc)
	c := client.NewConnTimeout(nc, 5*time.Second)
	defer c.Close()
	c.SetTrace(tr)

	// A coalesced write: the richest phase decomposition.
	if _, err := c.Put(7, 11); err != nil {
		t.Fatal(err)
	}
	cs := clientSpanFor(t, tr, proto.OpPut)
	if cs.Trace == 0 || cs.ID == 0 {
		t.Fatalf("client span has zero identity: %+v", cs)
	}
	sps := spansOf(t, tr, cs.Trace, func(sps []trace.Span) bool {
		return hasKind(sps, trace.KindFlush) && hasKind(sps, trace.KindEncode)
	})
	root := one(t, sps, trace.KindServer)
	if root.Parent != cs.ID {
		t.Fatalf("server root parent %x, want client span id %x", root.Parent, cs.ID)
	}
	if root.Op != proto.OpPut {
		t.Fatalf("server root op %#x, want OpPut", root.Op)
	}
	if root.Shard < 0 {
		t.Fatalf("default-keyspace write span should carry its shard, got %d", root.Shard)
	}
	for _, k := range []trace.Kind{
		trace.KindDecode, trace.KindWait, trace.KindApply,
		trace.KindEncode, trace.KindFlush, trace.KindBatch,
	} {
		if sp := one(t, sps, k); sp.Parent != root.ID {
			t.Fatalf("%v span parent %x, want server root %x", k, sp.Parent, root.ID)
		}
	}

	// DROPNS is the erasure barrier: its trace must reach through the
	// batcher into the durable layer — barrier span and checkpoint span
	// both under the request's server root.
	if _, err := c.NSPut("acme", 1, 2); err != nil {
		t.Fatal(err)
	}
	if existed, err := c.DropNS("acme"); err != nil || !existed {
		t.Fatalf("drop: %v %v", existed, err)
	}
	dcs := clientSpanFor(t, tr, proto.OpDropNS)
	dsps := spansOf(t, tr, dcs.Trace, func(sps []trace.Span) bool {
		return hasKind(sps, trace.KindCheckpoint) && hasKind(sps, trace.KindEraseBarrier)
	})
	droot := one(t, dsps, trace.KindServer)
	if droot.Parent != dcs.ID || droot.Op != proto.OpDropNS {
		t.Fatalf("DROPNS server root mis-stitched: %+v under client %+v", droot, dcs)
	}
	if droot.Shard != -1 {
		t.Fatalf("tenant op span leaked a shard index: %d", droot.Shard)
	}
	barrier := one(t, dsps, trace.KindEraseBarrier)
	if barrier.Parent != droot.ID {
		t.Fatalf("erase barrier parent %x, want %x", barrier.Parent, droot.ID)
	}
	cp := one(t, dsps, trace.KindCheckpoint)
	if cp.Parent != droot.ID {
		t.Fatalf("checkpoint span parent %x, want the DROPNS server root %x", cp.Parent, droot.ID)
	}
	if cp.Link == 0 {
		t.Fatal("checkpoint span carries no manifest-hash link")
	}

	// An explicit CHECKPOINT request parents the durable span the same
	// way, via the preminted identity. Dirty the store first — a no-op
	// checkpoint commits nothing and records nothing.
	if _, err := c.Put(8, 12); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ccs := clientSpanFor(t, tr, proto.OpCheckpoint)
	csps := spansOf(t, tr, ccs.Trace, func(sps []trace.Span) bool {
		return hasKind(sps, trace.KindCheckpoint)
	})
	croot := one(t, csps, trace.KindServer)
	ccp := one(t, csps, trace.KindCheckpoint)
	if croot.Parent != ccs.ID || ccp.Parent != croot.ID {
		t.Fatalf("CHECKPOINT trace mis-stitched: client %x <- root(parent %x) <- cp(parent %x, root %x)",
			ccs.ID, croot.Parent, ccp.Parent, croot.ID)
	}
}

// TestTraceV3ClientInterop pins backward compatibility: a v3 frame —
// no extension byte — gets a v3 reply with no trace context, byte
// layout unchanged, against the same server that speaks v4.
func TestTraceV3ClientInterop(t *testing.T) {
	db := newTestDB(t, 4)
	defer db.Abandon()
	tr := trace.NewStore(256, 1, nil)
	srv := New(db, Config{SweepInterval: -1, Trace: tr})
	defer srv.Close()

	nc, sc := net.Pipe()
	srv.ServeConn(sc)
	defer nc.Close()

	nc.SetDeadline(time.Now().Add(5 * time.Second))
	req := proto.AppendFrame(nil, proto.Frame{
		Ver: proto.Version - 1, Op: proto.OpPing, ID: 42, Payload: []byte("v3"),
	})
	if _, err := nc.Write(req); err != nil {
		t.Fatal(err)
	}
	f, err := proto.ReadFrame(nc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Ver != proto.Version-1 {
		t.Fatalf("v3 request answered with version %d", f.Ver)
	}
	if f.Trace.ID != 0 || f.Trace.Span != 0 || f.Trace.Sampled {
		t.Fatalf("v3 reply carries trace context: %+v", f.Trace)
	}
	if f.Op != proto.OpPing|proto.FlagReply || f.ID != 42 || string(f.Payload) != "v3" {
		t.Fatalf("v3 ping reply mangled: %+v", f)
	}
}
