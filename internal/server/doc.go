// Package server implements hidbd, the network front-end over the
// durable history-independent database (repro/internal/durable). It
// speaks the length-prefixed binary protocol of repro/internal/proto
// over TCP (or any net.Conn via ServeConn — the tests drive it over
// net.Pipe).
//
// # Connection model
//
// Each connection gets two goroutines: a reader that decodes frames and
// dispatches them, and a writer that serializes replies from a channel
// through a buffered writer, flushing when the queue goes idle — so a
// burst of pipelined replies costs one syscall, not one per reply.
// Replies carry the request id of the frame they answer and may be
// written out of request order.
//
// # Write coalescing
//
// Reads (GET, BATCH-get, RANGE, LEN) execute inline on the reader
// goroutine — they take one shard read-lock and return. Writes (PUT,
// DEL, BATCH-put, BATCH-del) are handed to a server-wide batcher: a
// single goroutine that drains every connection's pending writes into
// one shard.Op slice and applies it with DB.ApplyBatch, taking each
// shard's write lock once per drain instead of once per operation. The
// batch preserves each connection's submission order, and per-op
// outcome flags route each reply back to its connection. Under
// concurrent load the batcher turns k lock acquisitions into at most
// min(k, shards) — the same trick PutBatch plays for one caller,
// applied across callers.
//
// # Ordering
//
// Effects on one connection follow program order: before executing a
// read or a checkpoint, the reader waits for that connection's in-flight
// writes to be applied, so a pipelined PUT→GET of the same key on one
// connection always reads its own write. No ordering holds across
// connections beyond the linearizability of the store itself.
//
// # Expiry sweeping
//
// PUTTTL writes ride the same coalescer as PUTs; GETTTL reads execute
// inline like GETs. The server additionally runs an epoch-triggered
// sweeper (Config.SweepInterval bounds only its reaction latency): when
// the database clock's epoch advances, it lists the entries already
// dead at the new epoch and submits conditional Expire ops through the
// write coalescer, so physical removals serialize with the pipelined
// client writes they race — each Expire op re-checks the entry's
// recorded expiry under the shard lock, so a key a client resurrects
// mid-sweep survives. What gets removed is a pure function of
// (contents, epoch), never of the sweeper's schedule; a server whose
// sweeper never fires converges to the same bytes at its next
// checkpoint, which sweeps at its own epoch before rendering.
// Read-only replicas run no sweeper at all.
//
// # Replication
//
// The server is also the serving side of the read-replica protocol:
// SHARDHASH advertises the last committed checkpoint's per-shard
// canonical content hashes, and SYNC ships a shard image (by content
// hash, chunked) out of that checkpoint. With Config.ReadOnly the
// server is itself a replica: mutating requests are refused with
// ErrCodeReadOnly while reads and the sync opcodes keep working, so
// replicas both serve read traffic and feed downstream replicas. See
// repro/internal/replica for the fetching/installing side.
//
// # Limits and shutdown
//
// MaxConns bounds concurrent connections (excess connections receive an
// ErrCodeBusy error frame and are closed). An idle read deadline and a
// per-flush write deadline bound resource capture by dead peers.
// Shutdown stops accepting, unblocks idle readers, drains in-flight
// requests, then commits a final checkpoint so a clean shutdown loses
// nothing. Close is the impolite variant: it severs connections and
// skips the checkpoint, leaving the directory at the last commit —
// exactly the crash the durable layer is built to absorb.
package server
