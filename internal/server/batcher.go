package server

import (
	"sync"

	"repro/internal/durable"
	"repro/internal/proto"
	"repro/internal/shard"
)

// writeReq is one connection's PUT, PUTTTL, or DEL handed to the
// coalescer, carrying everything needed to route the reply back — or a
// server-internal expire op from the sweeper (c nil: no reply).
type writeReq struct {
	key, val int64
	exp      int64 // PUTTTL: absolute expiry; expire op: epoch bound
	del      bool
	ttl      bool // PUTTTL (reply carries the echoed expiry)
	expire   bool // sweeper-issued conditional delete; c is nil
	id       uint64
	c        *conn
}

// batcher is the server-wide write coalescer: a single goroutine that
// drains pending writes from every connection into one mixed
// shard.Op batch and applies it with DB.ApplyBatch, taking each shard's
// write lock once per drain instead of once per operation. Submission
// order per connection is preserved (the channel is FIFO and the batch
// applies same-shard ops in order), so the reply each connection sees
// is exactly what the equivalent point op would have returned.
type batcher struct {
	db        *durable.DB
	ch        chan writeReq
	st        *stats
	done      chan struct{}
	closeOnce sync.Once
	// maxBatch caps one drain so a firehose of writers cannot grow the
	// staging slices without bound.
	maxBatch int
}

func newBatcher(db *durable.DB, st *stats, queue, maxBatch int) *batcher {
	return &batcher{
		db:       db,
		ch:       make(chan writeReq, queue),
		st:       st,
		done:     make(chan struct{}),
		maxBatch: maxBatch,
	}
}

// submit hands a write to the coalescer. It blocks when the queue is
// full — backpressure, not unbounded buffering. The caller must have
// incremented its connection's pending-write count first.
func (b *batcher) submit(r writeReq) { b.ch <- r }

// close stops the coalescer after the queue drains. All submitters must
// have exited first, and run must have been started.
func (b *batcher) close() {
	b.closeOnce.Do(func() { close(b.ch) })
	<-b.done
}

// run is the coalescer loop: block for one write, then greedily drain
// whatever else is queued (up to maxBatch), apply the whole batch in
// one ApplyBatch, and fan the per-op outcomes back out as replies.
func (b *batcher) run() {
	defer close(b.done)
	var (
		reqs    []writeReq
		ops     []shard.Op
		changed []bool
	)
	for first := range b.ch {
		reqs = append(reqs[:0], first)
	drain:
		for len(reqs) < b.maxBatch {
			select {
			case r, ok := <-b.ch:
				if !ok {
					break drain
				}
				reqs = append(reqs, r)
			default:
				break drain
			}
		}

		ops = ops[:0]
		for _, r := range reqs {
			ops = append(ops, shard.Op{Key: r.key, Val: r.val, Exp: r.exp, Delete: r.del, Expire: r.expire})
		}
		if cap(changed) < len(ops) {
			changed = make([]bool, len(ops))
		}
		changed = changed[:len(ops)]
		_, err := b.db.ApplyBatch(ops, changed)
		b.st.noteBatch(len(ops))

		for i, r := range reqs {
			if r.c == nil {
				continue // server-internal op (expiry sweep): no reply owed
			}
			var f proto.Frame
			if err != nil {
				f = errorFrame(r.id, proto.ErrCodeInternal, err.Error())
			} else {
				op := proto.OpPut
				payload := proto.AppendBool(nil, changed[i])
				switch {
				case r.del:
					op = proto.OpDel
				case r.ttl:
					op = proto.OpPutTTL
					payload = proto.AppendTTLAck(nil, changed[i], r.exp)
				}
				f = proto.Frame{
					Ver:     proto.Version,
					Op:      op | proto.FlagReply,
					ID:      r.id,
					Payload: payload,
				}
			}
			r.c.send(f)
			r.c.pending.Done()
		}
	}
}
