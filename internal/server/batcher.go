package server

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/shard"
)

// writeReq is one connection's PUT, PUTTTL, or DEL handed to the
// coalescer, carrying everything needed to route the reply back — or a
// server-internal expire op from the sweeper (c nil: no reply).
type writeReq struct {
	key, val int64
	exp      int64 // PUTTTL: absolute expiry; expire op: epoch bound
	del      bool
	ttl      bool // PUTTTL (reply carries the echoed expiry)
	expire   bool // sweeper-issued conditional delete; c is nil
	id       uint64
	c        *conn

	t0 time.Time // frame receipt, for phase timing (zero for sweeper ops)
	in int       // request payload bytes, for the slow-op log
}

// batcher is the server-wide write coalescer: a single goroutine that
// drains pending writes from every connection into one mixed
// shard.Op batch and applies it with DB.ApplyBatch, taking each shard's
// write lock once per drain instead of once per operation. Submission
// order per connection is preserved (the channel is FIFO and the batch
// applies same-shard ops in order), so the reply each connection sees
// is exactly what the equivalent point op would have returned.
type batcher struct {
	db        *durable.DB
	ch        chan writeReq
	st        *stats
	sm        *serverMetrics
	slow      *obs.SlowLog
	done      chan struct{}
	closeOnce sync.Once
	// maxBatch caps one drain so a firehose of writers cannot grow the
	// staging slices without bound.
	maxBatch int
}

func newBatcher(db *durable.DB, st *stats, sm *serverMetrics, slow *obs.SlowLog, queue, maxBatch int) *batcher {
	return &batcher{
		db:       db,
		ch:       make(chan writeReq, queue),
		st:       st,
		sm:       sm,
		slow:     slow,
		done:     make(chan struct{}),
		maxBatch: maxBatch,
	}
}

// submit hands a write to the coalescer. It blocks when the queue is
// full — backpressure, not unbounded buffering. The caller must have
// incremented its connection's pending-write count first.
func (b *batcher) submit(r writeReq) { b.ch <- r }

// close stops the coalescer after the queue drains. All submitters must
// have exited first, and run must have been started.
func (b *batcher) close() {
	b.closeOnce.Do(func() { close(b.ch) })
	<-b.done
}

// extendThreshold is the adaptive batch window: a greedy drain that
// collected at least this many writes is evidence of concurrent
// pipelining, so the coalescer yields the processor once and drains
// again before taking the shard locks — submitters that were mid-send
// land in this batch instead of forcing another full lock-take. A
// smaller drain skips the yield: latency stays tight when load is
// light.
const extendThreshold = 8

// run is the coalescer loop: block for one write, then greedily drain
// whatever else is queued (up to maxBatch, with one adaptive window
// extension under load), apply the whole batch in one ApplyBatch, and
// fan the per-op outcomes back out as replies.
func (b *batcher) run() {
	defer close(b.done)
	var (
		reqs     []writeReq
		ops      []shard.Op
		changed  []bool
		pscratch []byte
	)
	for first := range b.ch {
		reqs = append(reqs[:0], first)
		reqs = b.drain(reqs)
		if n := len(reqs); n >= extendThreshold && n < b.maxBatch {
			runtime.Gosched()
			if reqs = b.drain(reqs); len(reqs) > n {
				b.st.wExtends.Add(1)
			}
		}

		// tw: end of coalesce-wait for everything in this drain. Per-req
		// wait is tw−r.t0 (receipt to batch formation); apply and encode
		// are per-batch costs shared by every member.
		tw := time.Now()
		ops = ops[:0]
		for _, r := range reqs {
			ops = append(ops, shard.Op{Key: r.key, Val: r.val, Exp: r.exp, Delete: r.del, Expire: r.expire})
			if r.c != nil {
				b.sm.phaseWait.Observe(int64(tw.Sub(r.t0)))
			}
		}
		if cap(changed) < len(ops) {
			changed = make([]bool, len(ops))
		}
		changed = changed[:len(ops)]
		_, err := b.db.ApplyBatch(ops, changed)
		b.st.noteBatch(len(ops))
		ta := time.Now()
		b.sm.phaseApply.Observe(int64(ta.Sub(tw)))
		b.sm.batchOps.Observe(int64(len(ops)))

		for i, r := range reqs {
			if r.c == nil {
				continue // server-internal op (expiry sweep): no reply owed
			}
			// Payloads are built in a loop-lifetime scratch: sendFrame
			// copies them into the connection's outbound buffer before
			// returning, so the next iteration may overwrite it.
			opb := proto.OpPut
			switch {
			case r.del:
				opb = proto.OpDel
			case r.ttl:
				opb = proto.OpPutTTL
			}
			if err != nil {
				pscratch = proto.AppendError(pscratch[:0], proto.ErrCodeInternal, err.Error())
				r.c.sendFrame(proto.OpError, r.id, pscratch)
			} else {
				if r.ttl {
					pscratch = proto.AppendTTLAck(pscratch[:0], changed[i], r.exp)
				} else {
					pscratch = proto.AppendBool(pscratch[:0], changed[i])
				}
				r.c.sendFrame(opb|proto.FlagReply, r.id, pscratch)
			}
			r.c.pending.Done()

			now := time.Now()
			total := now.Sub(r.t0)
			if h := b.sm.ops[opb]; h != nil {
				h.Observe(int64(total))
			}
			if b.slow.Slow(total) {
				b.slow.Record(obs.SlowOp{
					Op: opLabels[opb], ReqID: r.id,
					Shard:   b.db.Store().ShardOf(r.key),
					BytesIn: r.in, BytesOut: len(pscratch), Batch: len(reqs),
					Total: total, Wait: tw.Sub(r.t0),
					Apply: ta.Sub(tw), Encode: now.Sub(ta),
				})
			}
		}
		b.sm.phaseEncode.Observe(int64(time.Since(ta)))
	}
}

// drain greedily moves queued writes into reqs without blocking, up to
// maxBatch.
func (b *batcher) drain(reqs []writeReq) []writeReq {
	for len(reqs) < b.maxBatch {
		select {
		case r, ok := <-b.ch:
			if !ok {
				return reqs
			}
			reqs = append(reqs, r)
		default:
			return reqs
		}
	}
	return reqs
}
