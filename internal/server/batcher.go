package server

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/shard"
	"repro/internal/trace"
)

// writeReq is one connection's PUT, PUTTTL, or DEL handed to the
// coalescer, carrying everything needed to route the reply back — or a
// server-internal expire op from the sweeper (c nil: no reply), or a
// namespaced write (ns non-empty: NSPUT/NSDEL, or DROPNS when drop is
// set).
type writeReq struct {
	key, val int64
	exp      int64 // PUTTTL/NSPUT: absolute expiry; expire op: epoch bound
	del      bool
	ttl      bool   // PUTTTL (reply carries the echoed expiry)
	expire   bool   // sweeper-issued conditional delete; c is nil
	ns       string // tenant namespace ("": default keyspace)
	drop     bool   // DROPNS: erase the tenant named by ns
	id       uint64
	c        *conn

	t0 time.Time // frame receipt, for phase timing (zero for sweeper ops)
	in int       // request payload bytes, for the slow-op log

	// Wire context carried across the goroutine hop: the request
	// frame's protocol version (the reply echoes it) and trace context,
	// plus the decode-done timestamp for the decode child span. The
	// batcher must read these, never the conn's reader-goroutine
	// per-request fields. Zero for sweeper ops.
	td  time.Time
	ver byte
	tc  proto.TraceCtx
}

// batcher is the server-wide write coalescer: a single goroutine that
// drains pending writes from every connection into one mixed
// shard.Op batch and applies it with DB.ApplyBatch, taking each shard's
// write lock once per drain instead of once per operation. Submission
// order per connection is preserved (the channel is FIFO and the batch
// applies same-shard ops in order), so the reply each connection sees
// is exactly what the equivalent point op would have returned.
type batcher struct {
	db        *durable.DB
	ch        chan writeReq
	st        *stats
	sm        *serverMetrics
	slow      *obs.SlowLog
	done      chan struct{}
	closeOnce sync.Once
	// maxBatch caps one drain so a firehose of writers cannot grow the
	// staging slices without bound.
	maxBatch int
	// nsQuota is Config.NSQuota: the per-tenant live-key cap enforced
	// here, on the only goroutine that mutates namespaces, so the check
	// is exact rather than racy.
	nsQuota int
	// tr is the span store (nil: tracing off), set by New right after
	// newBatcher. Kept coalesced writes record their span trees from
	// this goroutine.
	tr *trace.Store

	// Coalescer-goroutine scratch, reused across drains.
	ops      []shard.Op
	changed  []bool
	pscratch []byte
}

func newBatcher(db *durable.DB, st *stats, sm *serverMetrics, slow *obs.SlowLog, queue, maxBatch, nsQuota int) *batcher {
	return &batcher{
		db:       db,
		ch:       make(chan writeReq, queue),
		st:       st,
		sm:       sm,
		slow:     slow,
		done:     make(chan struct{}),
		maxBatch: maxBatch,
		nsQuota:  nsQuota,
	}
}

// submit hands a write to the coalescer. It blocks when the queue is
// full — backpressure, not unbounded buffering. The caller must have
// incremented its connection's pending-write count first.
func (b *batcher) submit(r writeReq) { b.ch <- r }

// close stops the coalescer after the queue drains. All submitters must
// have exited first, and run must have been started.
func (b *batcher) close() {
	b.closeOnce.Do(func() { close(b.ch) })
	<-b.done
}

// extendThreshold is the adaptive batch window: a greedy drain that
// collected at least this many writes is evidence of concurrent
// pipelining, so the coalescer yields the processor once and drains
// again before taking the shard locks — submitters that were mid-send
// land in this batch instead of forcing another full lock-take. A
// smaller drain skips the yield: latency stays tight when load is
// light.
const extendThreshold = 8

// run is the coalescer loop: block for one write, then greedily drain
// whatever else is queued (up to maxBatch, with one adaptive window
// extension under load), then process the drain in submission order —
// contiguous default-keyspace runs as one ApplyBatch, namespaced ops
// as point ops against their tenant cells, DROPNS as a full barrier
// (drop + checkpoint before the reply). Per-connection order is
// preserved end to end: the channel is FIFO and segments apply in
// drain order, so the reply each connection sees is exactly what the
// equivalent point op would have returned.
func (b *batcher) run() {
	defer close(b.done)
	var reqs []writeReq
	for first := range b.ch {
		reqs = append(reqs[:0], first)
		reqs = b.drain(reqs)
		if n := len(reqs); n >= extendThreshold && n < b.maxBatch {
			runtime.Gosched()
			if reqs = b.drain(reqs); len(reqs) > n {
				b.st.wExtends.Add(1)
			}
		}

		// tw: end of coalesce-wait for everything in this drain. Per-req
		// wait is tw−r.t0 (receipt to batch formation); apply and encode
		// are per-segment costs shared by every member.
		tw := time.Now()
		for _, r := range reqs {
			if r.c != nil {
				b.sm.phaseWait.Observe(int64(tw.Sub(r.t0)))
			}
		}
		for lo := 0; lo < len(reqs); {
			if reqs[lo].ns == "" {
				hi := lo + 1
				for hi < len(reqs) && reqs[hi].ns == "" {
					hi++
				}
				b.applyDefault(reqs[lo:hi], tw)
				lo = hi
			} else {
				b.applyNS(reqs[lo], tw)
				lo++
			}
		}
	}
}

// applyDefault applies one contiguous run of default-keyspace writes as
// a single ApplyBatch and fans the per-op outcomes back out as replies.
func (b *batcher) applyDefault(reqs []writeReq, tw time.Time) {
	ops := b.ops[:0]
	for _, r := range reqs {
		ops = append(ops, shard.Op{Key: r.key, Val: r.val, Exp: r.exp, Delete: r.del, Expire: r.expire})
	}
	b.ops = ops
	if cap(b.changed) < len(ops) {
		b.changed = make([]bool, len(ops))
	}
	changed := b.changed[:len(ops)]
	_, err := b.db.ApplyBatch(ops, changed)
	b.st.noteBatch(len(ops))
	ta := time.Now()
	b.sm.phaseApply.Observe(int64(ta.Sub(tw)))
	b.sm.batchOps.Observe(int64(len(ops)))

	for i, r := range reqs {
		if r.c == nil {
			continue // server-internal op (expiry sweep): no reply owed
		}
		// Payloads are built in a coalescer-lifetime scratch: sendFrame
		// copies them into the connection's outbound buffer before
		// returning, so the next iteration may overwrite it.
		opb := proto.OpPut
		switch {
		case r.del:
			opb = proto.OpDel
		case r.ttl:
			opb = proto.OpPutTTL
		}
		ec := byte(0)
		if err != nil {
			ec = proto.ErrCodeInternal
			b.pscratch = proto.AppendError(b.pscratch[:0], ec, err.Error())
			r.c.sendFrame(proto.OpError, r.id, b.pscratch, r.ver, r.tc)
		} else {
			if r.ttl {
				b.pscratch = proto.AppendTTLAck(b.pscratch[:0], changed[i], r.exp)
			} else {
				b.pscratch = proto.AppendBool(b.pscratch[:0], changed[i])
			}
			r.c.sendFrame(opb|proto.FlagReply, r.id, b.pscratch, r.ver, r.tc)
		}
		r.c.pending.Done()

		now := time.Now()
		total := now.Sub(r.t0)
		if h := b.sm.ops[opb]; h != nil {
			h.Observe(int64(total))
		}
		var tid uint64
		if b.tr != nil {
			tid = b.traceWrite(r, opb, ec, len(b.pscratch), len(reqs), tw, ta, now, 0, 0)
		}
		if b.slow.Slow(total) {
			b.slow.Record(obs.SlowOp{
				Op: opLabels[opb], ReqID: r.id,
				Shard:   b.db.Store().ShardOf(r.key),
				BytesIn: r.in, BytesOut: len(b.pscratch), Batch: len(reqs),
				Total: total, Wait: tw.Sub(r.t0),
				Apply: ta.Sub(tw), Encode: now.Sub(ta),
				Trace: tid,
			})
		}
	}
	b.sm.phaseEncode.Observe(int64(time.Since(ta)))
}

// traceWrite records one coalesced write's span tree when the request
// is kept: the server root (parented under the client's span), then
// decode / coalesce-wait / batch / apply / encode children, flush
// attribution on the connection, and the opcode histogram's exemplar.
// tid/sid nonzero mean the identity was preminted and the request is
// kept unconditionally (DROPNS — the span ids had to exist before the
// apply so the durable layer could parent its checkpoint span);
// otherwise the keep rule is sampled (by the client, or by the server
// for requests arriving with no trace context) || slow || error.
// Returns the kept trace id (0: not kept). batch 0 suppresses the
// batch span — namespaced point ops have no coalesced batch to
// describe.
func (b *batcher) traceWrite(r writeReq, opb, errCode byte, out, batch int, tw, ta, now time.Time, tid, sid uint64) uint64 {
	tr := b.tr
	total := now.Sub(r.t0)
	if sid == 0 {
		if !(r.tc.Sampled || errCode != 0 || b.slow.Slow(total) ||
			(r.tc.ID == 0 && tr.Sample())) {
			return 0
		}
		tid = r.tc.ID
		if tid == 0 {
			tid = tr.NewID()
		}
		sid = tr.NewID()
	}
	shard := int32(-1) // tenant cells keep their routing secret
	if r.ns == "" {
		shard = int32(b.db.Store().ShardOf(r.key))
	}
	t0n := r.t0.UnixNano()
	tr.Record(trace.Span{
		Trace: tid, ID: sid, Parent: r.tc.Span,
		Start: t0n, Dur: int64(total),
		Kind: trace.KindServer, Op: opb, Err: errCode, Shard: shard,
		In: int32(r.in), Out: int32(out),
	})
	tr.Record(trace.Span{Trace: tid, ID: tr.NewID(), Parent: sid,
		Start: t0n, Dur: int64(r.td.Sub(r.t0)), Kind: trace.KindDecode, Shard: shard})
	tr.Record(trace.Span{Trace: tid, ID: tr.NewID(), Parent: sid,
		Start: r.td.UnixNano(), Dur: int64(tw.Sub(r.td)), Kind: trace.KindWait, Shard: shard})
	if batch > 0 {
		tr.Record(trace.Span{Trace: tid, ID: tr.NewID(), Parent: sid,
			Start: tw.UnixNano(), Dur: int64(ta.Sub(tw)), Kind: trace.KindBatch, Shard: shard,
			In: int32(batch)})
	}
	tr.Record(trace.Span{Trace: tid, ID: tr.NewID(), Parent: sid,
		Start: tw.UnixNano(), Dur: int64(ta.Sub(tw)), Kind: trace.KindApply, Shard: shard})
	tr.Record(trace.Span{Trace: tid, ID: tr.NewID(), Parent: sid,
		Start: ta.UnixNano(), Dur: int64(now.Sub(ta)), Kind: trace.KindEncode, Shard: shard})
	r.c.noteFlushTrace(tid, sid)
	if h := b.sm.ops[opb]; h != nil {
		h.Exemplar(int64(total), tid)
	}
	return tid
}

// applyNS applies one namespaced write as a point op — tenant cells
// have their own shard locks, so there is nothing to coalesce — and
// DROPNS as the erasure barrier the protocol promises: the cell is
// dropped AND a checkpoint committed (manifest without the tenant,
// files zero-wiped and unlinked) before the reply leaves, so a
// positive DROPNS reply means the erasure is already durable and
// forensically complete.
func (b *batcher) applyNS(r writeReq, tw time.Time) {
	var (
		opb      byte
		changed  bool
		errCode  byte
		errMsg   string
		tid, sid uint64 // preminted span identity (DROPNS under tracing)
	)
	switch {
	case r.drop:
		opb = proto.OpDropNS
		b.st.nsDrops.Add(1)
		if b.tr != nil && r.c != nil {
			// The erasure barrier commits a checkpoint — always slow,
			// always kept. Mint the span identity now so the durable
			// layer's checkpoint span parents under this request.
			tid = r.tc.ID
			if tid == 0 {
				tid = b.tr.NewID()
			}
			sid = b.tr.NewID()
		}
		// Drop and checkpoint as one operation: a failed checkpoint
		// restores the cell before the error reply, so the client is
		// never told a tenant is gone while its data stays durable, and
		// a retried DROPNS finds the tenant (or its lingering manifest
		// entry) and completes the erasure.
		var err error
		if changed, err = b.db.DropNamespaceSyncTraced(r.ns, tid, sid); err != nil {
			errCode, errMsg = proto.ErrCodeInternal, err.Error()
		}
	case r.del:
		opb = proto.OpNSDel
		changed = b.db.NSDelete(r.ns, r.key)
	default:
		opb = proto.OpNSPut
		if q := b.nsQuota; q > 0 && !b.db.NSHas(r.ns, r.key) && b.db.NSLen(r.ns) >= q {
			b.st.nsQuotaRejected.Add(1)
			errCode = proto.ErrCodeQuota
			errMsg = fmt.Sprintf("namespace is at its %d-key quota", q)
		} else {
			var err error
			changed, err = b.db.NSPutTTL(r.ns, r.key, r.val, r.exp)
			if err != nil {
				errCode, errMsg = proto.ErrCodeBadFrame, err.Error()
			}
		}
	}
	ta := time.Now()
	b.sm.phaseApply.Observe(int64(ta.Sub(tw)))
	if r.c == nil {
		return
	}
	if sid != 0 {
		// The barrier span covers the drop-and-checkpoint apply window;
		// the checkpoint span recorded inside it is a sibling child of
		// the same server span, linked by the committed manifest hash.
		b.tr.Record(trace.Span{Trace: tid, ID: b.tr.NewID(), Parent: sid,
			Start: tw.UnixNano(), Dur: int64(ta.Sub(tw)), Kind: trace.KindEraseBarrier,
			Shard: -1, Err: errCode})
	}
	if errMsg != "" {
		b.st.errors.Add(1)
		b.pscratch = proto.AppendError(b.pscratch[:0], errCode, errMsg)
		r.c.sendFrame(proto.OpError, r.id, b.pscratch, r.ver, r.tc)
		r.c.pending.Done()
		now := time.Now()
		if b.tr != nil {
			b.traceWrite(r, opb, errCode, len(b.pscratch), 0, tw, ta, now, tid, sid)
		}
		b.sm.phaseEncode.Observe(int64(time.Since(ta)))
		return
	}
	if opb == proto.OpNSPut {
		b.pscratch = proto.AppendTTLAck(b.pscratch[:0], changed, r.exp)
	} else {
		b.pscratch = proto.AppendBool(b.pscratch[:0], changed)
	}
	r.c.sendFrame(opb|proto.FlagReply, r.id, b.pscratch, r.ver, r.tc)
	r.c.pending.Done()

	now := time.Now()
	total := now.Sub(r.t0)
	if h := b.sm.ops[opb]; h != nil {
		h.Observe(int64(total))
	}
	var ktid uint64
	if b.tr != nil {
		ktid = b.traceWrite(r, opb, 0, len(b.pscratch), 0, tw, ta, now, tid, sid)
	}
	if b.slow.Slow(total) {
		// Forensic cleanliness: the record carries the opcode label and
		// sizes, never the tenant name or key. Shard is -1 — a tenant
		// cell's routing is its own secret.
		b.slow.Record(obs.SlowOp{
			Op: opLabels[opb], ReqID: r.id, Shard: -1,
			BytesIn: r.in, BytesOut: len(b.pscratch), Batch: 1,
			Total: total, Wait: tw.Sub(r.t0),
			Apply: ta.Sub(tw), Encode: now.Sub(ta),
			Trace: ktid,
		})
	}
	b.sm.phaseEncode.Observe(int64(time.Since(ta)))
}

// drain greedily moves queued writes into reqs without blocking, up to
// maxBatch.
func (b *batcher) drain(reqs []writeReq) []writeReq {
	for len(reqs) < b.maxBatch {
		select {
		case r, ok := <-b.ch:
			if !ok {
				return reqs
			}
			reqs = append(reqs, r)
		default:
			return reqs
		}
	}
	return reqs
}
