package server

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/client"
)

// TestPipelinedPingEchoNoAliasing hammers one pipelined connection with
// concurrent distinct-payload pings (interleaved with writes so the
// reader's reused frame buffer turns over constantly) and relies on
// client.Ping's echo check: if the server retained a ping payload that
// aliases the FrameReader's buffer past the next frame — instead of
// copying it into the outbound queue synchronously — echoes would come
// back corrupted by later requests' bytes.
func TestPipelinedPingEchoNoAliasing(t *testing.T) {
	db := newTestDB(t, 4)
	defer db.Close()
	srv, addr := startTCP(t, db, Config{SweepInterval: -1})
	defer srv.Close()

	c, err := client.DialTimeout(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				// Varying lengths and contents: every frame rewrites the
				// server's reader buffer with different bytes.
				payload := []byte(fmt.Sprintf("g%02d-i%04d-%s", g, i, string(make([]byte, i%32))))
				if err := c.Ping(payload); err != nil {
					t.Errorf("ping g%d i%d: %v", g, i, err)
					return
				}
				if i%5 == 0 {
					if _, err := c.Put(int64(g*1000+i), int64(i)); err != nil {
						t.Errorf("put g%d i%d: %v", g, i, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
