// Package stats implements the statistical machinery the paper's §4.3
// evaluation uses: the χ² goodness-of-fit test (via the regularized
// incomplete gamma function) and the Kolmogorov–Smirnov test, plus
// helpers for the paper's two-level uniformity protocol (χ² per range,
// then a χ² over the resulting p-values).
//
// Everything is stdlib-only; the incomplete gamma implementation follows
// the classic series/continued-fraction split (Lentz's algorithm for the
// continued fraction).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// ChiSquare computes the χ² statistic for observed counts against
// expected counts and returns the statistic and its p-value with
// len(obs)-1-ddofExtra degrees of freedom reduced by ddofExtra extra
// constraints (use 0 when expectations are fixed a priori).
func ChiSquare(obs []int, expected []float64, ddofExtra int) (stat, p float64, err error) {
	if len(obs) != len(expected) {
		return 0, 0, fmt.Errorf("stats: %d observed vs %d expected buckets", len(obs), len(expected))
	}
	if len(obs) < 2 {
		return 0, 0, fmt.Errorf("stats: need at least 2 buckets, got %d", len(obs))
	}
	for i, e := range expected {
		if e <= 0 {
			return 0, 0, fmt.Errorf("stats: expected count %v in bucket %d must be positive", e, i)
		}
		d := float64(obs[i]) - e
		stat += d * d / e
	}
	dof := len(obs) - 1 - ddofExtra
	if dof < 1 {
		return stat, 0, fmt.Errorf("stats: nonpositive degrees of freedom %d", dof)
	}
	return stat, ChiSquareSurvival(stat, dof), nil
}

// ChiSquareUniform tests observed counts against the uniform distribution
// over the buckets and returns the statistic and p-value.
func ChiSquareUniform(obs []int) (stat, p float64, err error) {
	total := 0
	for _, c := range obs {
		total += c
	}
	if total == 0 {
		return 0, 0, fmt.Errorf("stats: no observations")
	}
	expected := make([]float64, len(obs))
	e := float64(total) / float64(len(obs))
	for i := range expected {
		expected[i] = e
	}
	return ChiSquare(obs, expected, 0)
}

// ChiSquareSurvival returns Q(x; k) = P(χ²_k > x), the upper tail of the
// chi-square distribution with k degrees of freedom.
func ChiSquareSurvival(x float64, k int) float64 {
	if x <= 0 {
		return 1
	}
	return GammaQ(float64(k)/2, x/2)
}

// GammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a).
func GammaP(a, x float64) float64 {
	if x < 0 || a <= 0 {
		panic(fmt.Sprintf("stats: GammaP(%v, %v) out of domain", a, x))
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQContinued(a, x)
}

// GammaQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		panic(fmt.Sprintf("stats: GammaQ(%v, %v) out of domain", a, x))
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinued(a, x)
}

const (
	gammaEps     = 3e-15
	gammaMaxIter = 1000
)

// gammaPSeries evaluates P(a,x) by its power series, valid for x < a+1.
func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinued evaluates Q(a,x) by its continued fraction (modified
// Lentz), valid for x >= a+1.
func gammaQContinued(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// KolmogorovSmirnov tests whether sample (not necessarily sorted) is
// drawn from Uniform[0,1] and returns the KS statistic D and the
// asymptotic p-value. The paper's protocol applies a χ² to the p-values;
// KS is provided as a cross-check on the same data.
func KolmogorovSmirnov(sample []float64) (d, p float64, err error) {
	n := len(sample)
	if n == 0 {
		return 0, 0, fmt.Errorf("stats: empty sample")
	}
	s := make([]float64, n)
	copy(s, sample)
	sort.Float64s(s)
	for i, v := range s {
		if v < 0 || v > 1 {
			return 0, 0, fmt.Errorf("stats: sample value %v outside [0,1]", v)
		}
		lo := v - float64(i)/float64(n)
		hi := float64(i+1)/float64(n) - v
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d, ksSurvival(d, n), nil
}

// ksSurvival is the asymptotic Kolmogorov survival function
// Q_KS((sqrt(n) + 0.12 + 0.11/sqrt(n)) * d).
func ksSurvival(d float64, n int) float64 {
	sn := math.Sqrt(float64(n))
	lambda := (sn + 0.12 + 0.11/sn) * d
	if lambda < 1e-10 {
		return 1
	}
	sum := 0.0
	for j := 1; j <= 100; j++ {
		term := math.Exp(-2 * lambda * lambda * float64(j*j))
		if j%2 == 1 {
			sum += term
		} else {
			sum -= term
		}
		if term < 1e-16 {
			break
		}
	}
	p := 2 * sum
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// UniformPValues implements the paper's second-level test: bucket the
// p-values into bins of equal probability and χ²-test the bin counts
// against uniformity. Under the global null hypothesis (every first-level
// test's null true) the p-values are Uniform[0,1], so this returns a
// single summary p-value exactly as in §4.3 ("p=0.47, n=148").
func UniformPValues(pvals []float64, bins int) (stat, p float64, err error) {
	if bins < 2 {
		return 0, 0, fmt.Errorf("stats: need >= 2 bins")
	}
	counts := make([]int, bins)
	for _, v := range pvals {
		if v < 0 || v > 1 {
			return 0, 0, fmt.Errorf("stats: p-value %v outside [0,1]", v)
		}
		b := int(v * float64(bins))
		if b == bins {
			b--
		}
		counts[b]++
	}
	return ChiSquareUniform(counts)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs by the
// nearest-rank method. It panics on empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
