package stats

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^{-x}.
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := GammaP(1, x); !almostEqual(got, want, 1e-12) {
			t.Errorf("GammaP(1, %v) = %v, want %v", x, got, want)
		}
	}
	// P(1/2, x) = erf(sqrt(x)).
	for _, x := range []float64{0.25, 1, 4} {
		want := math.Erf(math.Sqrt(x))
		if got := GammaP(0.5, x); !almostEqual(got, want, 1e-12) {
			t.Errorf("GammaP(0.5, %v) = %v, want %v", x, got, want)
		}
	}
}

func TestGammaPQComplement(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2.5, 10, 74} {
		for _, x := range []float64{0.01, 0.5, 1, 3, 9, 50, 200} {
			if s := GammaP(a, x) + GammaQ(a, x); !almostEqual(s, 1, 1e-10) {
				t.Errorf("P+Q(a=%v, x=%v) = %v", a, x, s)
			}
		}
	}
}

func TestGammaEdge(t *testing.T) {
	if GammaP(2, 0) != 0 || GammaQ(2, 0) != 1 {
		t.Fatal("x=0 edge wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("GammaP(-1, 1) did not panic")
		}
	}()
	GammaP(-1, 1)
}

func TestChiSquareSurvivalKnownValues(t *testing.T) {
	// Critical values from standard tables.
	cases := []struct {
		x    float64
		k    int
		want float64
	}{
		{3.841, 1, 0.05},
		{5.991, 2, 0.05},
		{7.815, 3, 0.05},
		{18.307, 10, 0.05},
		{6.635, 1, 0.01},
		{23.209, 10, 0.01},
		{2.706, 1, 0.10},
	}
	for _, c := range cases {
		if got := ChiSquareSurvival(c.x, c.k); !almostEqual(got, c.want, 5e-4) {
			t.Errorf("ChiSquareSurvival(%v, %d) = %v, want %v", c.x, c.k, got, c.want)
		}
	}
	if got := ChiSquareSurvival(-1, 3); got != 1 {
		t.Errorf("survival at x<=0 = %v, want 1", got)
	}
}

func TestChiSquareUniformDetects(t *testing.T) {
	// A wildly skewed sample must give a tiny p-value.
	skewed := []int{1000, 10, 10, 10}
	_, p, err := ChiSquareUniform(skewed)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Fatalf("skewed sample got p = %v", p)
	}
	// A perfectly uniform sample must give p = 1-ish (statistic 0).
	uniform := []int{100, 100, 100, 100}
	stat, p, err := ChiSquareUniform(uniform)
	if err != nil {
		t.Fatal(err)
	}
	if stat != 0 || p < 0.999 {
		t.Fatalf("uniform sample: stat=%v p=%v", stat, p)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, _, err := ChiSquare([]int{1, 2}, []float64{1}, 0); err == nil {
		t.Error("mismatched lengths not rejected")
	}
	if _, _, err := ChiSquare([]int{1}, []float64{1}, 0); err == nil {
		t.Error("single bucket not rejected")
	}
	if _, _, err := ChiSquare([]int{1, 2}, []float64{1, 0}, 0); err == nil {
		t.Error("zero expected not rejected")
	}
	if _, _, err := ChiSquare([]int{1, 2}, []float64{1, 2}, 1); err == nil {
		t.Error("zero dof not rejected")
	}
	if _, _, err := ChiSquareUniform([]int{0, 0}); err == nil {
		t.Error("empty observations not rejected")
	}
}

func TestChiSquarePValueDistribution(t *testing.T) {
	// Under the null, chi-square p-values should themselves be uniform:
	// the calibration property the paper's protocol depends on.
	rng := xrand.New(2024)
	const trials, buckets, samples = 400, 8, 800
	pvals := make([]float64, 0, trials)
	for trial := 0; trial < trials; trial++ {
		counts := make([]int, buckets)
		for i := 0; i < samples; i++ {
			counts[rng.Intn(buckets)]++
		}
		_, p, err := ChiSquareUniform(counts)
		if err != nil {
			t.Fatal(err)
		}
		pvals = append(pvals, p)
	}
	_, p2, err := UniformPValues(pvals, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p2 < 0.001 {
		t.Fatalf("p-values of null chi-square tests not uniform: second-level p = %v", p2)
	}
	// KS cross-check.
	_, pks, err := KolmogorovSmirnov(pvals)
	if err != nil {
		t.Fatal(err)
	}
	if pks < 0.001 {
		t.Fatalf("KS rejects uniformity of null p-values: p = %v", pks)
	}
}

func TestKolmogorovSmirnov(t *testing.T) {
	// Uniform sample accepted.
	rng := xrand.New(77)
	sample := make([]float64, 2000)
	for i := range sample {
		sample[i] = rng.Float64()
	}
	d, p, err := KolmogorovSmirnov(sample)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.001 {
		t.Fatalf("KS rejected genuine uniform sample: D=%v p=%v", d, p)
	}
	// Clumped sample rejected.
	for i := range sample {
		sample[i] = 0.5 + 0.01*rng.Float64()
	}
	_, p, err = KolmogorovSmirnov(sample)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-10 {
		t.Fatalf("KS accepted clumped sample: p=%v", p)
	}
	if _, _, err := KolmogorovSmirnov(nil); err == nil {
		t.Fatal("empty sample not rejected")
	}
	if _, _, err := KolmogorovSmirnov([]float64{1.5}); err == nil {
		t.Fatal("out-of-range sample not rejected")
	}
}

func TestUniformPValuesErrors(t *testing.T) {
	if _, _, err := UniformPValues([]float64{0.5}, 1); err == nil {
		t.Error("bins<2 not rejected")
	}
	if _, _, err := UniformPValues([]float64{1.5}, 4); err == nil {
		t.Error("out-of-range p-value not rejected")
	}
	// p-value exactly 1.0 must land in the top bin, not out of range.
	if _, _, err := UniformPValues([]float64{1, 1, 0, 0.5}, 2); err != nil {
		t.Errorf("boundary p-values rejected: %v", err)
	}
}

func TestMeanQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if m := Mean(xs); !almostEqual(m, 2.5, 1e-12) {
		t.Errorf("Mean = %v", m)
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if q := Quantile(xs, 0.5); q != 2 {
		t.Errorf("median = %v, want 2", q)
	}
	if q := Quantile(xs, 1.0); q != 4 {
		t.Errorf("max = %v, want 4", q)
	}
	if q := Quantile(xs, 0.0); q != 1 {
		t.Errorf("min quantile = %v, want 1", q)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(empty) did not panic")
		}
	}()
	Quantile(nil, 0.5)
}
