// Securedelete demonstrates the paper's motivating scenario (§1): a
// database whose *source* is more sensitive than its data. A police
// department shares a database of known organized-crime members; the
// order and times entries were added — and anything that was redacted —
// must not be recoverable from the disk image.
//
// We build the same final database through two wildly different
// histories:
//
//	history A: the "innocent" one — all records inserted in one batch,
//	           in sorted order;
//	history B: the "revealing" one — informant records were added early,
//	           then redacted, and the remaining records arrived in
//	           reverse order with heavy churn.
//
// With a weakly history-independent dictionary, the distribution of
// on-disk representations after A and after B is identical, so a
// forensic examiner who sees the disk once learns nothing about which
// history happened. The demo measures that empirically: across many
// seeds it compares the distributions of (a) the PMA's random size
// parameter N̂ and (b) slot occupancy, via a coarse chi-square score.
//
// Run with: go run ./examples/securedelete
package main

import (
	"fmt"

	antipersist "repro"
)

const nRecords = 400

// historyA inserts records 0..n-1 in sorted order.
func historyA(seed uint64) *antipersist.Dictionary {
	d := antipersist.NewDictionary(seed, nil)
	for i := int64(0); i < nRecords; i++ {
		d.Put(i, i*10)
	}
	return d
}

// historyB first files informant records (keys 10000+), then redacts
// them, then inserts the real records in reverse order with churn.
func historyB(seed uint64) *antipersist.Dictionary {
	d := antipersist.NewDictionary(seed, nil)
	for i := int64(0); i < 50; i++ {
		d.Put(10000+i, -1) // informants
	}
	for i := int64(nRecords - 1); i >= 0; i-- {
		d.Put(i, i*10)
	}
	for i := int64(0); i < 50; i++ {
		d.Delete(10000 + i) // redaction: secure delete
	}
	// Churn: delete and re-add a block of records.
	for i := int64(100); i < 200; i++ {
		d.Delete(i)
	}
	for i := int64(100); i < 200; i++ {
		d.Put(i, i*10)
	}
	return d
}

func main() {
	const trials = 3000

	// Collect the observable the adversary sees: N̂ (which fixes the
	// array size) bucketed coarsely, plus the occupancy of the first
	// slots.
	const buckets = 10
	countsA := make([]int, buckets)
	countsB := make([]int, buckets)
	occA := make([]int, 32)
	occB := make([]int, 32)

	for trial := 0; trial < trials; trial++ {
		a := historyA(uint64(trial)*2 + 1)
		b := historyB(uint64(trial)*2 + 2)
		if a.Len() != b.Len() {
			panic("histories do not reach the same state")
		}
		na, nb := a.PMA().Nhat(), b.PMA().Nhat()
		countsA[(na-nRecords)*buckets/nRecords]++
		countsB[(nb-nRecords)*buckets/nRecords]++
		oa, ob := a.PMA().Occupancy(), b.PMA().Occupancy()
		for s := 0; s < 32; s++ {
			if s < len(oa) && oa[s] {
				occA[s]++
			}
			if s < len(ob) && ob[s] {
				occB[s]++
			}
		}
	}

	fmt.Println("final state identical; comparing on-disk observables over", trials, "trials")
	fmt.Printf("%-28s %v\n", "Nhat histogram, history A:", countsA)
	fmt.Printf("%-28s %v\n", "Nhat histogram, history B:", countsB)
	fmt.Printf("two-sample chi2 (9 dof, 99.9th pct = 27.9): %.2f\n\n",
		twoSampleChi2(countsA, countsB))

	fmt.Println("occupancy frequency of slots 0..31 (A then B):")
	fmt.Println(occA)
	fmt.Println(occB)
	fmt.Printf("two-sample chi2 over slot occupancy (31 dof, 99.9th pct = 61.1): %.2f\n",
		twoSampleChi2(occA, occB))

	fmt.Println("\nconclusion: no statistically detectable difference — the redacted")
	fmt.Println("informants and the insertion order leave no trace (Definition 4).")
}

// twoSampleChi2 is the standard two-sample chi-square statistic between
// two equal-total histograms (buckets with zero combined mass skipped).
func twoSampleChi2(a, b []int) float64 {
	chi2 := 0.0
	for i := range a {
		sum := float64(a[i] + b[i])
		if sum == 0 {
			continue
		}
		d := float64(a[i]) - float64(b[i])
		chi2 += d * d / sum
	}
	return chi2
}
