// Quickstart: the history-independent cache-oblivious B-tree as a
// drop-in ordered dictionary, with DAM-model I/O accounting.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	antipersist "repro"
)

func main() {
	// A tracker with block size 64 (in element units) and a 256-block
	// LRU cache simulates the disk-access machine the paper analyzes.
	io := antipersist.NewIOTracker(64, 256)
	dict := antipersist.NewDictionary(42, io)

	// Put / Get / Delete — a B-tree API, but the on-disk image leaks
	// nothing about the order these calls happened in.
	for i := int64(0); i < 100000; i++ {
		dict.Put(i*7%1000003, i)
	}
	fmt.Printf("loaded %d keys, PMA occupies %d slots (%.2fx)\n",
		dict.Len(), dict.PMA().SlotCount(),
		float64(dict.PMA().SlotCount())/float64(dict.Len()))

	if v, ok := dict.Get(7); ok {
		fmt.Printf("Get(7) = %d\n", v)
	}
	dict.Delete(7)
	if _, ok := dict.Get(7); !ok {
		fmt.Println("Delete(7): gone — and the layout cannot reveal it ever existed")
	}

	// Range queries are the PMA's specialty: one search plus a scan.
	before := io.Snapshot()
	items := dict.Range(1000, 2000, nil)
	fmt.Printf("Range(1000, 2000): %d items in %d I/Os\n",
		len(items), before.Delta(io))

	// Order statistics come from the rank tree.
	mn, _ := dict.Min()
	mx, _ := dict.Max()
	fmt.Printf("min key %d, max key %d, median key %d\n",
		mn.Key, mx.Key, dict.Select(dict.Len()/2).Key)

	fmt.Printf("\ntotals: %d reads, %d writes, %d cache hits\n",
		io.Reads(), io.Writes(), io.Hits())
	fmt.Printf("PMA cost counters: %d element moves, %d range rebuilds, %d full rebuilds\n",
		dict.PMA().Moves(), dict.PMA().Rebuilds(), dict.PMA().FullRebuilds())
}
