// Durable demonstrates the crash-safe on-disk database: a DB directory
// whose every byte is a pure function of (contents, seed) — no
// write-ahead log, no timestamps, no generation counters — so the disk
// image a forensic examiner sees after a crash, a recovery, or a
// thousand checkpoints is byte-identical to one produced by a single
// clean bulk load of the same data.
//
// The demo builds the same final contents through two different
// on-disk lives:
//
//	life A: open, bulk-load, close — one checkpoint, no drama;
//	life B: open, churn keys across several explicit checkpoints with
//	        deletes and overwrites, close, REOPEN (recovery), churn
//	        back to the same contents, close.
//
// It then compares the two directories file by file.
//
// Run with: go run ./examples/durable
package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	antipersist "repro"
)

const (
	nKeys  = 1000
	shards = 8
	seed   = 2016 // PODS 2016
)

func opts() *antipersist.DBOptions {
	return &antipersist.DBOptions{Shards: shards, Seed: seed, NoBackground: true}
}

// lifeA is the quiet history: one bulk load, one checkpoint.
func lifeA(dir string) {
	db, err := antipersist.Open(dir, opts())
	check(err)
	items := make([]antipersist.Item, 0, nKeys)
	for k := int64(0); k < nKeys; k++ {
		items = append(items, antipersist.Item{Key: k, Val: k * 7})
	}
	db.PutBatch(items)
	check(db.Close())
}

// lifeB reaches the same contents through churn, mid-life checkpoints,
// and a full crash-recovery cycle.
func lifeB(dir string) {
	db, err := antipersist.Open(dir, opts())
	check(err)
	for k := int64(nKeys - 1); k >= 0; k-- {
		db.Put(k, -k)          // wrong value, fixed later
		db.Put(k+50000, 12345) // transient key, deleted later
	}
	check(db.Checkpoint()) // persist the embarrassing intermediate state
	for k := int64(0); k < nKeys; k += 2 {
		db.Put(k, k*7)
		db.Delete(k + 50000)
	}
	check(db.Checkpoint())
	check(db.Close())

	// Reopen: recovery verifies the manifest checksum, every shard
	// image's hash, and the store invariants.
	db, err = antipersist.Open(dir, opts())
	check(err)
	for k := int64(1); k < nKeys; k += 2 {
		db.Put(k, k*7)
		db.Delete(k + 50000)
	}
	check(db.Close())
}

func snapshot(dir string) map[string][]byte {
	ents, err := os.ReadDir(dir)
	check(err)
	out := map[string][]byte{}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		check(err)
		out[e.Name()] = b
	}
	return out
}

func main() {
	root, err := os.MkdirTemp("", "antipersist-durable-*")
	check(err)
	defer os.RemoveAll(root)
	dirA, dirB := filepath.Join(root, "a"), filepath.Join(root, "b")

	lifeA(dirA)
	lifeB(dirB)

	a, b := snapshot(dirA), snapshot(dirB)
	names := make([]string, 0, len(a))
	for n := range a {
		names = append(names, n)
	}
	sort.Strings(names)

	fmt.Printf("life A (1 bulk load):            %d files\n", len(a))
	fmt.Printf("life B (churn + crash recovery): %d files\n", len(b))
	identical := len(a) == len(b)
	for _, n := range names {
		same := bytes.Equal(a[n], b[n])
		identical = identical && same
		fmt.Printf("  %-28s %6d bytes  identical=%v\n", n, len(a[n]), same)
	}
	if !identical {
		fmt.Println("DIRECTORIES DIVERGE — history leaked to disk!")
		os.Exit(1)
	}
	fmt.Println("\nbyte-identical directories: the disk remembers the data, not its past.")

	// And the recovered data really is all there.
	db, err := antipersist.Open(dirB, opts())
	check(err)
	v, ok := db.Get(999)
	fmt.Printf("reopened life B: %d keys, Get(999) = %d, %v\n", db.Len(), v, ok)
	check(db.Close())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
