// Persistence demonstrates the "persistent storage" half of the
// paper's title: the dictionary serializes to a disk image that IS its
// memory representation — nothing more. Consequences shown here:
//
//  1. round trip: store, load, keep operating;
//  2. canonicity: store→load→store produces identical bytes, so the
//     image carries no hidden state;
//  3. anti-persistence: an image taken after deleting records is
//     drawn from the same distribution as an image of a database that
//     never contained them — byte-level inspection included.
//
// Run with: go run ./examples/persistence
package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	antipersist "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "antipersist")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "dict.img")

	// Build a database and redact some records.
	d := antipersist.NewDictionary(7, nil)
	for i := int64(0); i < 5000; i++ {
		d.Put(i, i*i)
	}
	for i := int64(1000); i < 1100; i++ {
		d.Delete(i) // the sensitive rows
	}

	// 1. Store to disk and load back.
	f, err := os.Create(path)
	if err != nil {
		panic(err)
	}
	if _, err := d.WriteTo(f); err != nil {
		panic(err)
	}
	f.Close()
	info, _ := os.Stat(path)
	fmt.Printf("stored %d keys in %d bytes (%.1f bytes/key incl. gaps+trees)\n",
		d.Len(), info.Size(), float64(info.Size())/float64(d.Len()))

	f, err = os.Open(path)
	if err != nil {
		panic(err)
	}
	loaded, err := antipersist.ReadDictionary(f, 12345, nil)
	f.Close()
	if err != nil {
		panic(err)
	}
	if v, ok := loaded.Get(4999); !ok || v != 4999*4999 {
		panic("load verification failed")
	}
	loaded.Put(999999, 1) // keeps working after load
	fmt.Println("loaded image verified; dictionary remains fully operational")

	// 2. Canonicity: the image is a pure function of the representation.
	var img1, img2 bytes.Buffer
	if _, err := d.WriteTo(&img1); err != nil {
		panic(err)
	}
	reload, err := antipersist.ReadDictionary(bytes.NewReader(img1.Bytes()), 777, nil)
	if err != nil {
		panic(err)
	}
	if _, err := reload.WriteTo(&img2); err != nil {
		panic(err)
	}
	fmt.Printf("canonical image: store→load→store identical bytes? %v\n",
		bytes.Equal(img1.Bytes(), img2.Bytes()))

	// 3. Anti-persistence at the byte level: compare the image of the
	// redacted database with the image of a database that never held
	// the sensitive rows. The byte streams differ only through the
	// structure's own randomness — their DISTRIBUTIONS are identical,
	// which we spot-check by comparing image sizes and slot densities
	// across seeds.
	sizesRedacted := map[int]int{}
	sizesClean := map[int]int{}
	for seed := uint64(0); seed < 200; seed++ {
		red := antipersist.NewDictionary(seed*2+1, nil)
		for i := int64(0); i < 5000; i++ {
			red.Put(i, i*i)
		}
		for i := int64(1000); i < 1100; i++ {
			red.Delete(i)
		}
		clean := antipersist.NewDictionary(seed*2+2, nil)
		for i := int64(0); i < 1000; i++ {
			clean.Put(i, i*i)
		}
		for i := int64(1100); i < 5000; i++ {
			clean.Put(i, i*i)
		}
		var br, bc bytes.Buffer
		red.WriteTo(&br)
		clean.WriteTo(&bc)
		sizesRedacted[br.Len()/100000]++
		sizesClean[bc.Len()/100000]++
	}
	fmt.Println("\nimage-size histograms (buckets of 100kB), 200 seeds each:")
	fmt.Printf("  after redaction:      %v\n", sizesRedacted)
	fmt.Printf("  never-contained:      %v\n", sizesClean)
	fmt.Println("same support, same shape: the image cannot witness the deletion.")
}
