// Skipindex runs the paper's §6 comparison live: the history-
// independent external-memory skip list (promotion probability 1/B^γ)
// against the folklore B-skip list (promotion probability 1/B) and
// Pugh's in-memory skip list run on disk.
//
// Theorem 3 says the HI skip list's searches cost O(log_B N) I/Os with
// high probability; Lemma 15 says the folklore variant has Ω(√(NB))
// keys whose searches cost Ω(log(N/B)) — asymptotically no better than
// the in-memory baseline. This example measures the full search-cost
// distribution over every stored key and prints the mean, tail
// quantiles and worst case for all three.
//
// Run with: go run ./examples/skipindex
package main

import (
	"fmt"
	"sort"

	antipersist "repro"
)

const (
	n = 30000
	b = 32
)

// searchCosts measures the cold-cache cost of a one-shot search for
// every stored key — the "disk is stolen, adversary probes once" model.
// The tracker (cache included) is reset before each search.
func searchCosts(contains func(int64) bool, io *antipersist.IOTracker) []float64 {
	costs := make([]float64, 0, n)
	for k := int64(1); k <= n; k++ {
		io.Reset()
		contains(k)
		costs = append(costs, float64(io.IOs()))
	}
	sort.Float64s(costs)
	return costs
}

func report(name string, costs []float64) {
	total := 0.0
	for _, c := range costs {
		total += c
	}
	q := func(p float64) float64 { return costs[int(p*float64(len(costs)-1))] }
	fmt.Printf("%-24s mean %5.1f   p50 %4.0f   p99 %4.0f   p99.9 %4.0f   max %4.0f\n",
		name, total/float64(len(costs)), q(0.50), q(0.99), q(0.999), q(1.0))
}

func main() {
	fmt.Printf("search-cost distribution over all %d keys, B = %d (I/Os per search)\n\n", n, b)

	// HI external skip list (Theorem 3).
	ioHI := antipersist.NewIOTracker(b, 16)
	hi, err := antipersist.NewSkipList(antipersist.SkipListConfig{B: b, Epsilon: 1.0 / 3.0}, 1, ioHI)
	if err != nil {
		panic(err)
	}
	for k := int64(1); k <= n; k++ {
		hi.Insert(k)
	}
	report("HI skip list (1/B^γ)", searchCosts(hi.Contains, ioHI))

	// Folklore B-skip list (Lemma 15).
	ioFL := antipersist.NewIOTracker(b, 16)
	fl, err := antipersist.NewSkipList(antipersist.SkipListConfig{B: b, Folklore: true}, 2, ioFL)
	if err != nil {
		panic(err)
	}
	for k := int64(1); k <= n; k++ {
		fl.Insert(k)
	}
	report("folklore B-skip (1/B)", searchCosts(fl.Contains, ioFL))

	// In-memory skip list run on disk: every node hop is an I/O.
	ioIM := antipersist.NewIOTracker(1, 16)
	im := antipersist.NewInMemorySkipList(3, ioIM)
	for k := int64(1); k <= n; k++ {
		im.Insert(k)
	}
	report("in-memory on disk (1/2)", searchCosts(im.Contains, ioIM))

	fmt.Println("\nexpected shape: the folklore list looks fine ON AVERAGE (its mean can")
	fmt.Println("even beat the HI list's), but its tail grows like log(N/B) — toward the")
	fmt.Println("in-memory baseline — while the HI list's WORST search stays near log_B N.")
	fmt.Println("Good expectation, bad high-probability bound: that is exactly Lemma 15.")

	// Range queries: search cost plus k/B scan (Theorem 3).
	fmt.Println()
	for _, k := range []int{100, 1000, 10000} {
		before := ioHI.IOs()
		got := hi.Range(1, int64(k), nil)
		fmt.Printf("HI range of %5d keys: %4d I/Os (k/B = %d)\n",
			len(got), ioHI.IOs()-before, k/b)
	}
}
