// Timeseries exercises the PMA's rank-based API on the workload the
// paper's sequential-file-maintenance heritage comes from: an append-
// mostly event log with out-of-order arrivals, a sliding retention
// window (deletes from the front), and frequent range scans.
//
// This access pattern — "pouring sand in at one end and letting it out
// at the other" (§1.2) — is precisely the history-revealing pattern
// that makes classic PMAs leak; here it runs on the HI PMA, and we also
// report the classic PMA side by side for the cost comparison.
//
// Run with: go run ./examples/timeseries
package main

import (
	"fmt"
	"time"

	antipersist "repro"
	"repro/internal/xrand"
)

func main() {
	const (
		events    = 200000
		window    = 50000 // retention window size
		scanEvery = 1000
		scanLen   = 500
	)

	io := antipersist.NewIOTracker(64, 1024)
	hi := antipersist.NewPMA(7, io)
	classic := antipersist.NewClassicPMA(nil)
	rng := xrand.New(99)

	start := time.Now()
	var scanned int
	for ts := 0; ts < events; ts++ {
		// Events arrive mostly in timestamp order with small jitter, so
		// the insertion rank is near the back but not always at it.
		jitter := rng.Intn(16)
		rank := hi.Len() - jitter
		if rank < 0 {
			rank = 0
		}
		hi.InsertAt(rank, antipersist.Item{Key: int64(ts), Val: int64(rng.Intn(1000))})
		classic.InsertAt(rank, int64(ts))

		// Enforce the retention window: evict the oldest event.
		if hi.Len() > window {
			hi.DeleteAt(0)
			classic.DeleteAt(0)
		}

		// Periodic dashboard query: the most recent scanLen events.
		if ts%scanEvery == scanEvery-1 {
			lo := hi.Len() - scanLen
			if lo < 0 {
				lo = 0
			}
			items := hi.Query(lo, hi.Len()-1, nil)
			scanned += len(items)
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("ingested %d events, retained %d, scanned %d rows in %v\n",
		events, hi.Len(), scanned, elapsed.Round(time.Millisecond))
	fmt.Printf("\n%-22s %15s %15s\n", "", "HI PMA", "classic PMA")
	fmt.Printf("%-22s %15d %15d\n", "element moves", hi.Moves(), classic.Moves())
	fmt.Printf("%-22s %15.1f %15.1f\n", "moves per update",
		float64(hi.Moves())/float64(2*events-window),
		float64(classic.Moves())/float64(2*events-window))
	fmt.Printf("%-22s %15d %15d\n", "physical slots", hi.SlotCount(), classic.Capacity())
	fmt.Printf("\nHI PMA I/Os under B=64: %d reads, %d writes\n", io.Reads(), io.Writes())
	fmt.Printf("HI PMA rebuilds: %d partial, %d full\n", hi.Rebuilds(), hi.FullRebuilds())

	if err := hi.CheckInvariants(); err != nil {
		fmt.Println("INVARIANT VIOLATION:", err)
		return
	}
	fmt.Println("\nall HI PMA invariants hold; the array looks the same as if the")
	fmt.Println("retained events had been bulk-loaded — no trace of the sliding window.")
}
