// TTL demonstrates the history-independent expiry subsystem: entries
// carry an absolute expiry epoch, the logical state at epoch E is
// exactly {entries with exp == 0 || exp > E}, and the deterministic
// sweep makes expired data FORENSICALLY absent — while keeping the
// whole directory a pure function of (live contents, epoch).
//
// The demo runs two databases through very different TTL lives:
//
//	life A: the final live set written directly at epoch E, one
//	        checkpoint — no session ever expired here;
//	life B: thousands of short-lived sessions created, expired, and
//	        swept across several epochs and checkpoints, some keys
//	        resurrected, and finally the same live set at E.
//
// Both use an injected manual clock (production uses the system clock)
// so the epochs line up exactly. The directories come out byte for
// byte identical: an examiner who seizes the disk cannot tell the
// database that churned through 3000 expired sessions from the one
// that never held any — and greps confirm the dead sessions' bytes
// appear nowhere.
//
// Run with: go run ./examples/ttl
package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	antipersist "repro"
)

const (
	shards   = 8
	seed     = 2016 // PODS 2016
	epochE   = 10_000
	nLive    = 500
	nSession = 3000
)

func opts(clk antipersist.Clock) *antipersist.DBOptions {
	return &antipersist.DBOptions{
		Shards: shards, Seed: seed, NoBackground: true, Clock: clk,
	}
}

// finalState writes the target live set: plain entries and sessions
// that expire comfortably after epoch E.
func finalState(db *antipersist.DB) {
	for k := int64(0); k < nLive; k++ {
		if k%2 == 0 {
			db.Put(k, k*7)
		} else {
			db.PutTTL(k, k*7, epochE+1000+k)
		}
	}
}

// lifeA never sees an expiry: the live set, written at epoch E.
func lifeA(dir string) {
	clk := antipersist.NewManualClock(epochE)
	db, err := antipersist.Open(dir, opts(clk))
	check(err)
	finalState(db)
	check(db.Close())
}

// lifeB churns: short-lived sessions die and are swept epoch after
// epoch, with checkpoints committing every intermediate state.
func lifeB(dir string) {
	clk := antipersist.NewManualClock(1)
	db, err := antipersist.Open(dir, opts(clk))
	check(err)

	// Wave after wave of sessions, each dying a few epochs out.
	for wave := int64(0); wave < 3; wave++ {
		base := 1_000_000 + wave*nSession
		for i := int64(0); i < nSession; i++ {
			db.PutTTL(base+i, i*13, clk.Now()+2+i%5)
		}
		check(db.Checkpoint()) // the sessions' bytes ARE on disk now
		clk.Advance(10)        // ... and now they are all dead
		check(db.Checkpoint()) // swept: live-set-at-E reaches the disk
	}
	// Some keys from the final set live early lives too.
	for k := int64(0); k < nLive; k += 3 {
		db.PutTTL(k, 999, clk.Now()+1)
	}
	clk.Advance(5)
	check(db.Checkpoint())

	clk.Set(epochE)
	finalState(db)
	check(db.Close())
}

func main() {
	dirA, err := os.MkdirTemp("", "ttl-a-*")
	check(err)
	defer os.RemoveAll(dirA)
	dirB, err := os.MkdirTemp("", "ttl-b-*")
	check(err)
	defer os.RemoveAll(dirB)

	lifeA(dirA)
	lifeB(dirB)

	fa, fb := dirFiles(dirA), dirFiles(dirB)
	fmt.Printf("life A: %d files; life B (after %d expired sessions): %d files\n",
		len(fa), 3*nSession, len(fb))
	if len(fa) != len(fb) {
		fmt.Println("FAIL: directory listings differ")
		os.Exit(1)
	}
	identical := true
	for i := range fa {
		a := readAll(filepath.Join(dirA, fa[i]))
		b := readAll(filepath.Join(dirB, fb[i]))
		same := bytes.Equal(a, b)
		fmt.Printf("  %-28s %8d bytes  identical=%v\n", fa[i], len(a), same)
		identical = identical && same && fa[i] == fb[i]
	}
	if !identical {
		fmt.Println("FAIL: the TTL history leaked into the directory")
		os.Exit(1)
	}

	// Forensics: the dead sessions' key bytes appear in NO file.
	leaks := 0
	for _, name := range fb {
		data := readAll(filepath.Join(dirB, name))
		for wave := int64(0); wave < 3; wave++ {
			probe := make([]byte, 8)
			k := uint64(1_000_000 + wave*nSession) // first session key of the wave
			for i := 0; i < 8; i++ {
				probe[i] = byte(k >> (8 * i)) // little-endian, as images store keys
			}
			if bytes.Contains(data, probe) {
				leaks++
			}
		}
	}
	fmt.Printf("forensic grep for expired session keys: %d hits\n", leaks)
	if leaks > 0 {
		fmt.Println("FAIL: expired bytes survive on disk")
		os.Exit(1)
	}

	// And the live set still answers, expiries echoed.
	clk := antipersist.NewManualClock(epochE)
	db, err := antipersist.Open(dirB, opts(clk))
	check(err)
	v, exp, ok := db.GetTTL(1)
	fmt.Printf("GetTTL(1) = (%d, exp %d, %v); Len = %d\n", v, exp, ok, db.Len())
	check(db.Close())
	fmt.Println("OK: expiry is a function of (contents, epoch) — sweep timing never reached the disk")
}

func dirFiles(dir string) []string {
	ents, err := os.ReadDir(dir)
	check(err)
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names
}

func readAll(p string) []byte {
	data, err := os.ReadFile(p)
	check(err)
	return data
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ttl example:", err)
		os.Exit(1)
	}
}
