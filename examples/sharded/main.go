// Sharded: the concurrent Store in one tour — parallel writers on a
// lock-striped, hash-sharded set of HI dictionaries, batch operations,
// a cross-shard merged range query, aggregated I/O accounting, and a
// canonical persistence round trip.
//
// Run with: go run ./examples/sharded
package main

import (
	"bytes"
	"fmt"
	"sync"

	antipersist "repro"
	"repro/internal/xrand"
)

func main() {
	const shards = 8
	trackers := make([]*antipersist.IOTracker, shards)
	for i := range trackers {
		trackers[i] = antipersist.NewIOTracker(64, 64)
	}
	store, err := antipersist.NewStore(shards, 42, trackers...)
	if err != nil {
		panic(err)
	}

	// Eight goroutines write a million keys total, concurrently. Each
	// key routes to one of the eight shards by a seeded hash, so the
	// writers mostly proceed in parallel.
	const workers = 8
	const perWorker = 125_000
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := xrand.New(uint64(g) + 7)
			base := int64(g) * perWorker
			for i := int64(0); i < perWorker; i++ {
				store.Put(base+i, int64(rng.Intn(1<<20)))
			}
		}(g)
	}
	wg.Wait()
	fmt.Printf("loaded %d keys across %d shards:\n", store.Len(), store.NumShards())
	for i := 0; i < store.NumShards(); i++ {
		fmt.Printf("  shard %d: %d keys\n", i, store.ShardLen(i))
	}

	// Batch operations take each shard's lock once per batch.
	keys := make([]int64, 1000)
	for i := range keys {
		keys[i] = int64(i * 997)
	}
	vals, ok := store.GetBatch(keys)
	hits := 0
	for i := range ok {
		if ok[i] {
			hits++
			_ = vals[i]
		}
	}
	fmt.Printf("GetBatch(1000 keys): %d hits\n", hits)

	// Range queries merge the per-shard sorted runs with a k-way heap.
	items := store.Range(500_000, 500_100, nil)
	fmt.Printf("Range(500000, 500100): %d items, first %d last %d\n",
		len(items), items[0].Key, items[len(items)-1].Key)

	stats := store.Stats()
	fmt.Printf("aggregated DAM stats: %d reads, %d writes, %d hits (B=%d)\n",
		stats.Reads, stats.Writes, stats.Hits, stats.B)

	// Persistence: the image is canonical — a pure function of contents
	// and seed, byte-identical whatever operation history built it.
	var img bytes.Buffer
	if _, err := store.WriteTo(&img); err != nil {
		panic(err)
	}
	reloaded, err := antipersist.ReadStore(bytes.NewReader(img.Bytes()), 99)
	if err != nil {
		panic(err)
	}
	fmt.Printf("round trip: %d bytes, reloaded %d keys\n", img.Len(), reloaded.Len())

	var img2 bytes.Buffer
	if _, err := reloaded.WriteTo(&img2); err != nil {
		panic(err)
	}
	fmt.Printf("reloaded image identical: %v — the disk leaks no history\n",
		bytes.Equal(img.Bytes(), img2.Bytes()))
}
