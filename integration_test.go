package antipersist

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/workload"
	"repro/internal/xrand"
)

// TestDifferentialDictionaries drives every key-based structure — the
// HI cache-oblivious B-tree, the HI skip list, the folklore B-skip
// list, the in-memory skip list and the classic B-tree — with the same
// operation stream and requires identical answers everywhere.
func TestDifferentialDictionaries(t *testing.T) {
	dict := NewDictionary(1, nil)
	hiSL, err := NewSkipList(SkipListConfig{B: 32, Epsilon: 0.5}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	flSL, err := NewSkipList(SkipListConfig{B: 32, Folklore: true}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	imSL := NewInMemorySkipList(4, nil)
	bt := NewBTree(32, 5, nil)
	oracle := make(map[int64]bool)

	rng := xrand.New(42)
	for op := 0; op < 20000; op++ {
		k := int64(rng.Intn(4000)) + 1
		switch rng.Intn(5) {
		case 0, 1, 2:
			want := !oracle[k]
			oracle[k] = true
			if got := dict.Put(k, k*10); got != want {
				t.Fatalf("op %d: dict.Put(%d) = %v, want %v", op, k, got, want)
			}
			for name, got := range map[string]bool{
				"hi-skip": hiSL.Insert(k), "folklore": flSL.Insert(k),
				"in-mem": imSL.Insert(k), "btree": bt.Insert(k),
			} {
				if got != want {
					t.Fatalf("op %d: %s insert(%d) = %v, want %v", op, name, k, got, want)
				}
			}
		case 3:
			want := oracle[k]
			delete(oracle, k)
			for name, got := range map[string]bool{
				"dict": dict.Delete(k), "hi-skip": hiSL.Delete(k),
				"folklore": flSL.Delete(k), "in-mem": imSL.Delete(k),
				"btree": bt.Delete(k),
			} {
				if got != want {
					t.Fatalf("op %d: %s delete(%d) = %v, want %v", op, name, k, got, want)
				}
			}
		case 4:
			want := oracle[k]
			for name, got := range map[string]bool{
				"dict": dict.Has(k), "hi-skip": hiSL.Contains(k),
				"folklore": flSL.Contains(k), "in-mem": imSL.Contains(k),
				"btree": bt.Contains(k),
			} {
				if got != want {
					t.Fatalf("op %d: %s contains(%d) = %v, want %v", op, name, k, got, want)
				}
			}
		}
	}
	n := len(oracle)
	for name, got := range map[string]int{
		"dict": dict.Len(), "hi-skip": hiSL.Len(), "folklore": flSL.Len(),
		"in-mem": imSL.Len(), "btree": bt.Len(),
	} {
		if got != n {
			t.Fatalf("%s: len %d, oracle %d", name, got, n)
		}
	}
	// Range agreement.
	for trial := 0; trial < 50; trial++ {
		lo := int64(rng.Intn(4000)) + 1
		hi := lo + int64(rng.Intn(500))
		items := dict.Range(lo, hi, nil)
		keysA := make([]int64, len(items))
		for i, it := range items {
			keysA[i] = it.Key
		}
		keysB := hiSL.Range(lo, hi, nil)
		keysC := bt.Range(lo, hi, nil)
		if len(keysA) != len(keysB) || len(keysA) != len(keysC) {
			t.Fatalf("range(%d,%d): sizes %d/%d/%d", lo, hi, len(keysA), len(keysB), len(keysC))
		}
		for i := range keysA {
			if keysA[i] != keysB[i] || keysA[i] != keysC[i] {
				t.Fatalf("range(%d,%d)[%d]: %d/%d/%d", lo, hi, i, keysA[i], keysB[i], keysC[i])
			}
		}
	}
	// Final invariants everywhere.
	if err := dict.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := hiSL.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := flSL.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := imSL.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := bt.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestDifferentialPMAs drives the HI PMA and the classic PMA with the
// same rank-based trace and requires identical logical contents.
func TestDifferentialPMAs(t *testing.T) {
	for _, kind := range workload.Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			hi := NewPMA(7, nil)
			cl := NewClassicPMA(nil)
			ops := workload.Trace(kind, 11, 6000, 4, 1, 1)
			var key int64
			for i, op := range ops {
				switch op.Kind {
				case workload.OpInsert:
					key++
					hi.InsertAt(op.Rank, Item{Key: key})
					cl.InsertAt(op.Rank, key)
				case workload.OpDelete:
					hi.DeleteAt(op.Rank)
					cl.DeleteAt(op.Rank)
				case workload.OpQuery:
					a := hi.Query(op.Rank, op.Rank+op.Len-1, nil)
					b := cl.Query(op.Rank, op.Rank+op.Len-1, nil)
					for j := range a {
						if a[j].Key != b[j] {
							t.Fatalf("op %d: query[%d] = %d vs %d", i, j, a[j].Key, b[j])
						}
					}
				}
			}
			if hi.Len() != cl.Len() {
				t.Fatalf("lengths diverged: %d vs %d", hi.Len(), cl.Len())
			}
			if err := hi.CheckInvariants(); err != nil {
				t.Error("hi:", err)
			}
			if err := cl.CheckInvariants(); err != nil {
				t.Error("classic:", err)
			}
		})
	}
}

// TestPersistenceAcrossFacade exercises the full store/load/continue
// cycle through the public API, under every workload kind.
func TestPersistenceAcrossFacade(t *testing.T) {
	for _, kind := range []workload.Kind{workload.Uniform, workload.Sequential, workload.Zipf} {
		t.Run(kind.String(), func(t *testing.T) {
			d := NewDictionary(13, nil)
			keys := workload.NewKeySource(kind, 17)
			inserted := make(map[int64]int64)
			for i := 0; i < 4000; i++ {
				k := keys.Next()
				d.Put(k, int64(i))
				inserted[k] = int64(i)
			}
			var img bytes.Buffer
			if _, err := d.WriteTo(&img); err != nil {
				t.Fatal(err)
			}
			loaded, err := ReadDictionary(&img, 99, nil)
			if err != nil {
				t.Fatal(err)
			}
			for k, v := range inserted {
				got, ok := loaded.Get(k)
				if !ok || got != v {
					t.Fatalf("after load: Get(%d) = (%d, %v), want %d", k, got, ok, v)
				}
			}
			// Continue operating on the loaded copy.
			for i := 0; i < 2000; i++ {
				k := keys.Next()
				loaded.Put(k, int64(i))
			}
			if err := loaded.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWorkloadSweepInvariants runs every workload kind against the HI
// PMA and the HI skip list, checking invariants at the end — the
// failure-injection sweep DESIGN.md calls for.
func TestWorkloadSweepInvariants(t *testing.T) {
	for _, kind := range workload.Kinds() {
		t.Run(fmt.Sprintf("hipma/%v", kind), func(t *testing.T) {
			p := NewPMA(19, nil)
			src := workload.NewRankSource(kind, 23)
			for i := 0; i < 20000; i++ {
				p.InsertAt(src.Next(p.Len()), Item{Key: int64(i)})
			}
			if err := p.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// Drain from alternating ends.
			for p.Len() > 0 {
				if p.Len()%2 == 0 {
					p.DeleteAt(0)
				} else {
					p.DeleteAt(p.Len() - 1)
				}
			}
			if err := p.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
	for _, kind := range []workload.Kind{workload.Uniform, workload.Sequential, workload.Reverse} {
		t.Run(fmt.Sprintf("skiplist/%v", kind), func(t *testing.T) {
			s, err := NewSkipList(SkipListConfig{B: 16, Epsilon: 0.5}, 29, nil)
			if err != nil {
				t.Fatal(err)
			}
			keys := workload.NewKeySource(kind, 31)
			var all []int64
			for i := 0; i < 8000; i++ {
				k := keys.Next()
				if s.Insert(k) {
					all = append(all, k)
				}
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			for _, k := range all {
				if !s.Delete(k) {
					t.Fatalf("lost key %d", k)
				}
			}
			if s.Len() != 0 {
				t.Fatalf("len = %d after full drain", s.Len())
			}
		})
	}
}

// TestIOAccountingConsistency: reads+writes reported by the facade
// tracker must be monotone and consistent across Reset/Snapshot.
func TestIOAccountingConsistency(t *testing.T) {
	tr := NewIOTracker(64, 32)
	d := NewDictionary(37, tr)
	var last uint64
	for i := int64(0); i < 5000; i++ {
		d.Put(i, i)
		if ios := tr.IOs(); ios < last {
			t.Fatalf("I/O counter went backwards: %d -> %d", last, ios)
		} else {
			last = ios
		}
	}
	snap := tr.Snapshot()
	d.Get(100)
	d.Get(101)
	if snap.Delta(tr) == 0 {
		t.Fatal("snapshot delta missed the queries")
	}
}

// TestSoak is a long randomized workout across every structure at once:
// 60k mixed operations with periodic cross-checks and invariant sweeps.
// Skipped with -short.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in short mode")
	}
	tr := NewIOTracker(64, 128)
	dict := NewDictionary(101, tr)
	hiSL, _ := NewSkipList(SkipListConfig{B: 64, Epsilon: 1.0 / 3.0}, 102, tr)
	detSL, _ := NewSkipList(SkipListConfig{B: 64, Folklore: true, Deterministic: true}, 103, nil)
	bt := NewBTree(64, 104, tr)
	oracle := make(map[int64]int64)

	rng := xrand.New(105)
	for op := 0; op < 60000; op++ {
		k := int64(rng.Intn(20000)) + 1
		switch rng.Intn(6) {
		case 0, 1, 2:
			v := int64(op)
			dict.Put(k, v)
			hiSL.Insert(k)
			detSL.Insert(k)
			bt.Insert(k)
			oracle[k] = v
		case 3:
			dict.Delete(k)
			hiSL.Delete(k)
			detSL.Delete(k)
			bt.Delete(k)
			delete(oracle, k)
		case 4:
			_, want := oracle[k]
			if dict.Has(k) != want || hiSL.Contains(k) != want ||
				detSL.Contains(k) != want || bt.Contains(k) != want {
				t.Fatalf("op %d: membership divergence on %d", op, k)
			}
		case 5:
			lo := int64(rng.Intn(20000)) + 1
			hi := lo + int64(rng.Intn(200))
			a := dict.Range(lo, hi, nil)
			b := hiSL.Range(lo, hi, nil)
			if len(a) != len(b) {
				t.Fatalf("op %d: range sizes %d vs %d", op, len(a), len(b))
			}
		}
		if op%15000 == 14999 {
			if err := dict.CheckInvariants(); err != nil {
				t.Fatalf("op %d dict: %v", op, err)
			}
			if err := hiSL.CheckInvariants(); err != nil {
				t.Fatalf("op %d hiSL: %v", op, err)
			}
			if err := detSL.CheckInvariants(); err != nil {
				t.Fatalf("op %d detSL: %v", op, err)
			}
			if err := bt.CheckInvariants(); err != nil {
				t.Fatalf("op %d btree: %v", op, err)
			}
		}
	}
	if dict.Len() != len(oracle) || hiSL.Len() != len(oracle) ||
		detSL.Len() != len(oracle) || bt.Len() != len(oracle) {
		t.Fatalf("final lengths diverged: %d/%d/%d/%d vs oracle %d",
			dict.Len(), hiSL.Len(), detSL.Len(), bt.Len(), len(oracle))
	}
	// Round-trip the dictionary and skip list through images and verify
	// the loaded copies agree with the oracle.
	var imgD, imgS bytes.Buffer
	if _, err := dict.WriteTo(&imgD); err != nil {
		t.Fatal(err)
	}
	if _, err := hiSL.WriteTo(&imgS); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadDictionary(&imgD, 201, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ReadSkipList(&imgS, 202, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range oracle {
		if got, ok := d2.Get(k); !ok || got != v {
			t.Fatalf("loaded dict: Get(%d) = (%d, %v)", k, got, ok)
		}
		if !s2.Contains(k) {
			t.Fatalf("loaded skip list lost %d", k)
		}
	}
}
