package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proto"
	"repro/internal/trace"
)

// Item is a key plus its value, the element type of batch and range
// operations. Values are fixed 8-byte integers — the data model of the
// underlying history-independent structures.
type Item = proto.Item

// ErrConnClosed is returned by operations on a closed connection (or
// one whose peer went away). The detailed cause is wrapped.
var ErrConnClosed = errors.New("client: connection closed")

// ErrReadOnly is wrapped into the error a mutating operation gets back
// from a read replica (server code ErrCodeReadOnly). Check it with
// errors.Is and redirect the write to the primary; the connection
// stays usable for reads. The underlying *proto.RemoteError is also in
// the chain for errors.As.
var ErrReadOnly = errors.New("client: server is a read-only replica")

// ErrNotReplica is wrapped into the error Promote gets back from a
// node that is already writable (server code ErrCodeNotReplica) —
// a double promotion, or a PROMOTE aimed at the primary.
var ErrNotReplica = errors.New("client: server is already writable")

// Health re-exports the OpHealth reply: the node's role, promotion
// count, checkpoint epoch, and committed-manifest hash.
type Health = proto.Health

// ShardHash re-exports the per-shard checkpoint descriptor returned by
// SyncShardHashes: the committed canonical image's size and SHA-256.
type ShardHash = proto.ShardHash

// Conn is one pipelined protocol connection. It is safe for concurrent
// use: every method may be called from any goroutine, and concurrent
// calls share the connection as in-flight pipelined requests.
type Conn struct {
	nc     net.Conn
	nextID atomic.Uint64

	wch chan []byte // encoded request frames to the writer

	mu      sync.Mutex
	pending map[uint64]chan proto.Frame
	err     error // set once broken; guards future calls
	closed  bool
	dead    atomic.Bool // mirrors closed for lock-free health checks

	done    chan struct{} // closed when the reader exits
	timeout time.Duration

	// lastEpoch is the highest checkpoint epoch seen in any stamped
	// read reply on this connection — the client side of the
	// bounded-staleness contract (see LastEpoch).
	lastEpoch atomic.Uint64

	// m is never nil: Conns outside an observed pool share
	// defaultClientMetrics (live, unregistered).
	m *clientMetrics

	// tr is the span store this connection records client spans into
	// (nil pointer: tracing off). When set, every request carries a v4
	// trace-context extension — a fresh trace id, this call's span id
	// as the parent the server stitches under, and the head-sampling
	// decision — and sampled or failed calls record a client span. An
	// atomic pointer because SetTrace may race in-flight calls.
	tr atomic.Pointer[trace.Store]
}

// Dial connects to a hidbd server at addr ("host:port").
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(nc), nil
}

// DialTimeout is Dial with a connect timeout, and sets the same value
// as the per-request reply timeout (0: none).
func DialTimeout(addr string, d time.Duration) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, err
	}
	c := NewConn(nc)
	c.timeout = d
	return c, nil
}

// NewConnTimeout is NewConn with a per-request reply timeout (0:
// none): a call whose reply does not arrive within d fails instead of
// waiting forever, so a peer that accepts the connection but never
// answers cannot wedge the caller.
func NewConnTimeout(nc net.Conn, d time.Duration) *Conn {
	c := NewConn(nc)
	c.timeout = d
	return c
}

// NewConn wraps an established net.Conn (a TCP conn, one end of a
// net.Pipe, ...) in a protocol connection and starts its reader and
// writer goroutines.
func NewConn(nc net.Conn) *Conn {
	c := &Conn{
		nc:      nc,
		wch:     make(chan []byte, 256),
		pending: map[uint64]chan proto.Frame{},
		done:    make(chan struct{}),
		m:       defaultClientMetrics,
	}
	go c.writeLoop()
	go c.readLoop()
	return c
}

// Close tears the connection down and returns the socket's close
// error. In-flight requests fail with ErrConnClosed. Close is
// idempotent: only the call that actually tears the connection down
// can return an error; every later call (including one racing the
// reader or writer noticing a dead peer) returns nil.
func (c *Conn) Close() error {
	return c.fail(ErrConnClosed)
}

// broken reports whether the connection has been torn down (by Close
// or by a transport failure). A false result is advisory — the peer
// may die between the check and the next call — but a true result is
// permanent: a Conn never comes back.
func (c *Conn) broken() bool { return c.dead.Load() }

// fail marks the connection broken, closes the socket, and fails every
// in-flight request. First cause wins; the socket close error is
// returned by the invocation that actually performed the teardown.
func (c *Conn) fail(cause error) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.dead.Store(true)
	c.err = cause
	waiters := c.pending
	c.pending = map[uint64]chan proto.Frame{}
	c.mu.Unlock()
	cerr := c.nc.Close()
	for _, ch := range waiters {
		close(ch) // receivers translate a closed channel into c.err
	}
	return cerr
}

// writeLoop serializes request frames, flushing when the queue goes
// idle so concurrent callers share syscalls.
func (c *Conn) writeLoop() {
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	for {
		var buf []byte
		select {
		case buf = <-c.wch:
		case <-c.done:
			return // conn dead; senders unblock on done too
		}
		_, err := bw.Write(buf)
	more:
		for err == nil {
			select {
			case buf2 := <-c.wch:
				_, err = bw.Write(buf2)
			default:
				break more
			}
		}
		if err == nil {
			err = bw.Flush()
		}
		if err != nil {
			c.fail(fmt.Errorf("%w: write: %w", ErrConnClosed, err))
		}
	}
}

// readLoop routes replies to their waiting callers by request id.
func (c *Conn) readLoop() {
	defer close(c.done)
	br := bufio.NewReaderSize(c.nc, 64<<10)
	for {
		f, err := proto.ReadFrame(br, proto.MaxPayload)
		if err != nil {
			c.fail(fmt.Errorf("%w: read: %w", ErrConnClosed, err))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[f.ID]
		delete(c.pending, f.ID)
		c.mu.Unlock()
		if ok {
			ch <- f // buffered; never blocks
			continue
		}
		// No waiting caller. An error frame with id 0 addresses the
		// connection itself (the server rejected us: busy, shutdown, a
		// framing violation we made — see docs/PROTOCOL.md) — surface
		// it as the connection's terminal error. Anything else,
		// including a per-request error frame whose caller already
		// timed out and deregistered, is a reply to an abandoned
		// request; drop it and keep the stream alive.
		if f.Op == proto.OpError && f.ID == 0 {
			if code, msg, derr := proto.DecodeError(f.Payload); derr == nil {
				c.fail(&proto.RemoteError{Code: code, Msg: msg})
				return
			}
		}
	}
}

// call sends one request and waits for its reply, enforcing the
// version and error-frame conventions.
func (c *Conn) call(op byte, payload []byte) (proto.Frame, error) {
	t0 := time.Now()
	c.m.inflight.Add(1)
	f, err := c.doCall(op, payload)
	c.m.inflight.Add(-1)
	c.m.reqSecs.ObserveSince(t0)
	if err != nil {
		c.m.requestErrors.Inc()
	}
	return f, err
}

// errLocalFailure is the Err byte a client span carries when the call
// failed before any server error code existed — a broken connection, a
// timeout, a malformed reply. Deliberately outside the wire error-code
// vocabulary.
const errLocalFailure = 0xff

// SetTrace wires a span store into the connection: requests start
// carrying the v4 trace-context extension, and calls that are
// head-sampled (the store's rate) or fail record a client span. Safe
// to call concurrently with in-flight calls; a nil store is ignored.
func (c *Conn) SetTrace(st *trace.Store) {
	if st != nil {
		c.tr.Store(st)
	}
}

func (c *Conn) doCall(op byte, payload []byte) (proto.Frame, error) {
	tr := c.tr.Load()
	if tr == nil {
		return c.doCallCtx(op, payload, proto.TraceCtx{})
	}
	// The client span's id travels as the context's parent-span field,
	// so every server-side span the request spawns stitches under it.
	sid := tr.NewID()
	tc := proto.TraceCtx{ID: tr.NewID(), Span: sid, Sampled: tr.Sample()}
	t0 := time.Now()
	f, err := c.doCallCtx(op, payload, tc)
	if tc.Sampled || err != nil {
		ec := byte(0)
		if err != nil {
			ec = errLocalFailure
			var re *proto.RemoteError
			if errors.As(err, &re) {
				ec = re.Code
			}
		}
		tr.Record(trace.Span{
			Trace: tc.ID, ID: sid,
			Start: t0.UnixNano(), Dur: int64(time.Since(t0)),
			Kind: trace.KindClient, Op: op, Err: ec, Shard: -1,
			In: int32(len(payload)), Out: int32(len(f.Payload)),
		})
	}
	return f, err
}

func (c *Conn) doCallCtx(op byte, payload []byte, tc proto.TraceCtx) (proto.Frame, error) {
	id := c.nextID.Add(1)
	ch := make(chan proto.Frame, 1)

	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		return proto.Frame{}, err
	}
	c.pending[id] = ch
	c.mu.Unlock()

	buf := proto.AppendFrame(nil, proto.Frame{Ver: proto.Version, Op: op, ID: id, Payload: payload, Trace: tc})
	select {
	case c.wch <- buf:
	case <-c.done:
		return proto.Frame{}, c.lastErr()
	}

	var timeout <-chan time.Time
	if c.timeout > 0 {
		t := time.NewTimer(c.timeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case f, ok := <-ch:
		if !ok {
			return proto.Frame{}, c.lastErr()
		}
		if f.Op == proto.OpError {
			code, msg, err := proto.DecodeError(f.Payload)
			if err != nil {
				return proto.Frame{}, fmt.Errorf("client: bad error frame: %w", err)
			}
			rerr := &proto.RemoteError{Code: code, Msg: msg}
			switch code {
			case proto.ErrCodeReadOnly:
				// Both sentinels stay in the chain: errors.Is(err,
				// ErrReadOnly) for routing, errors.As for the code.
				return proto.Frame{}, fmt.Errorf("%w: %w", ErrReadOnly, rerr)
			case proto.ErrCodeNotReplica:
				return proto.Frame{}, fmt.Errorf("%w: %w", ErrNotReplica, rerr)
			case proto.ErrCodeQuota:
				return proto.Frame{}, fmt.Errorf("%w: %w", ErrQuota, rerr)
			}
			return proto.Frame{}, rerr
		}
		if f.Op != op|proto.FlagReply {
			return proto.Frame{}, fmt.Errorf("client: reply opcode %s to request %s",
				proto.OpName(f.Op), proto.OpName(op))
		}
		return f, nil
	case <-timeout:
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return proto.Frame{}, fmt.Errorf("client: %s timed out after %v", proto.OpName(op), c.timeout)
	}
}

func (c *Conn) lastErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return ErrConnClosed
}

// noteEpoch records a stamped reply's checkpoint epoch, keeping the
// connection-local high-water mark monotonic.
func (c *Conn) noteEpoch(epoch uint64) {
	for {
		old := c.lastEpoch.Load()
		if epoch <= old || c.lastEpoch.CompareAndSwap(old, epoch) {
			return
		}
	}
}

// LastEpoch returns the highest checkpoint epoch stamped on any read
// reply this connection has seen. The epoch is NODE-LOCAL (checkpoints
// committed or installed since that process started), so it is only
// comparable between replies from the same node incarnation — which is
// exactly what read-your-writes needs: write to the primary,
// CHECKPOINT, then read from a replica until its stamp advances past
// the epoch it reported before the checkpoint.
func (c *Conn) LastEpoch() uint64 { return c.lastEpoch.Load() }

// Get returns the value stored for key and whether it exists.
func (c *Conn) Get(key int64) (val int64, ok bool, err error) {
	val, _, ok, err = c.GetStamped(key)
	return val, ok, err
}

// GetStamped is Get plus the serving node's checkpoint epoch stamp —
// the bounded-staleness contract made visible. On a replica the stamp
// identifies exactly which installed checkpoint served the read.
func (c *Conn) GetStamped(key int64) (val int64, epoch uint64, ok bool, err error) {
	f, err := c.call(proto.OpGet, proto.AppendKey(nil, key))
	if err != nil {
		return 0, 0, false, err
	}
	val, epoch, ok, err = proto.DecodeFound(f.Payload)
	if err == nil {
		c.noteEpoch(epoch)
	}
	return val, epoch, ok, err
}

// Put upserts the value for key and reports whether the key was newly
// inserted.
func (c *Conn) Put(key, val int64) (inserted bool, err error) {
	f, err := c.call(proto.OpPut, proto.AppendKeyVal(nil, key, val))
	if err != nil {
		return false, err
	}
	return proto.DecodeBool(f.Payload)
}

// PutTTL upserts the value for key with an ABSOLUTE expiry epoch (unix
// seconds; 0: never expires) and reports whether the key was newly
// inserted — counting a key whose previous entry had already expired as
// new. The server echoes the applied expiry back. A relative TTL is the
// caller's arithmetic (time.Now().Unix() + seconds): the wire
// deliberately carries only absolute state, never request timing.
func (c *Conn) PutTTL(key, val, exp int64) (inserted bool, err error) {
	f, err := c.call(proto.OpPutTTL, proto.AppendKeyValExp(nil, key, val, exp))
	if err != nil {
		return false, err
	}
	inserted, echoed, err := proto.DecodeTTLAck(f.Payload)
	if err != nil {
		return false, err
	}
	if echoed != exp {
		return inserted, fmt.Errorf("client: put-ttl echoed expiry %d, sent %d", echoed, exp)
	}
	return inserted, nil
}

// GetTTL returns the value and recorded absolute expiry (0: none) for
// key, and whether the key is live. An entry whose expiry has passed
// reads as absent from the moment the epoch passes it.
func (c *Conn) GetTTL(key int64) (val, exp int64, ok bool, err error) {
	f, err := c.call(proto.OpGetTTL, proto.AppendKey(nil, key))
	if err != nil {
		return 0, 0, false, err
	}
	val, exp, epoch, ok, err := proto.DecodeFoundTTL(f.Payload)
	if err == nil {
		c.noteEpoch(epoch)
	}
	return val, exp, ok, err
}

// Delete removes key and reports whether it was present.
func (c *Conn) Delete(key int64) (deleted bool, err error) {
	f, err := c.call(proto.OpDel, proto.AppendKey(nil, key))
	if err != nil {
		return false, err
	}
	return proto.DecodeBool(f.Payload)
}

// PutBatch upserts every item in one request and returns the number of
// keys newly inserted. Duplicate keys apply in batch order.
func (c *Conn) PutBatch(items []Item) (inserted int, err error) {
	f, err := c.call(proto.OpBatch, proto.AppendBatchPut(nil, items))
	if err != nil {
		return 0, err
	}
	n, err := proto.DecodeU32(f.Payload)
	return int(n), err
}

// GetBatch looks up every key in one request; values and presence
// flags align with keys. len(keys) must not exceed proto.MaxBatchGet
// (the reply-size cap, ~116k keys); split larger lookups.
func (c *Conn) GetBatch(keys []int64) (vals []int64, ok []bool, err error) {
	if len(keys) > proto.MaxBatchGet {
		return nil, nil, fmt.Errorf("client: batch-get of %d keys exceeds the %d-key reply cap",
			len(keys), proto.MaxBatchGet)
	}
	f, err := c.call(proto.OpBatch, proto.AppendBatchKeys(nil, proto.BatchGet, keys))
	if err != nil {
		return nil, nil, err
	}
	vals, ok, epoch, err := proto.DecodeBatchGetReply(f.Payload)
	if err == nil {
		c.noteEpoch(epoch)
	}
	return vals, ok, err
}

// DeleteBatch removes every key in one request and returns the number
// that were present.
func (c *Conn) DeleteBatch(keys []int64) (deleted int, err error) {
	f, err := c.call(proto.OpBatch, proto.AppendBatchKeys(nil, proto.BatchDel, keys))
	if err != nil {
		return 0, err
	}
	n, err := proto.DecodeU32(f.Payload)
	return int(n), err
}

// Range returns up to max items with lo <= key <= hi in ascending key
// order (max 0: the server's cap). more reports that the scan was
// truncated; resume with lo = last key + 1.
func (c *Conn) Range(lo, hi int64, max int) (items []Item, more bool, err error) {
	f, err := c.call(proto.OpRange, proto.AppendRangeReq(nil, lo, hi, uint32(max)))
	if err != nil {
		return nil, false, err
	}
	items, epoch, more, err := proto.DecodeRangeReply(f.Payload)
	if err == nil {
		c.noteEpoch(epoch)
	}
	return items, more, err
}

// Len returns the number of keys in the database.
func (c *Conn) Len() (int, error) {
	f, err := c.call(proto.OpLen, nil)
	if err != nil {
		return 0, err
	}
	n, epoch, err := proto.DecodeLenReply(f.Payload)
	if err == nil {
		c.noteEpoch(epoch)
	}
	return int(n), err
}

// Checkpoint commits a checkpoint and returns the server's total
// committed-checkpoint count. It is a durability barrier for this
// connection: every previously acknowledged operation is on disk when
// it returns.
func (c *Conn) Checkpoint() (uint64, error) {
	f, err := c.call(proto.OpCheckpoint, nil)
	if err != nil {
		return 0, err
	}
	return proto.DecodeU64(f.Payload)
}

// SyncShardHashes fetches the server's last committed checkpoint
// descriptor: its routing seed and, per shard, the canonical image's
// size and SHA-256. Two nodes with equal contents return equal hashes
// for every shard, so this is the comparison an anti-entropy round
// starts with.
func (c *Conn) SyncShardHashes() (hseed uint64, entries []ShardHash, err error) {
	f, err := c.call(proto.OpShardHash, nil)
	if err != nil {
		return 0, nil, err
	}
	return proto.DecodeShardHashes(f.Payload)
}

// SyncShardChunk fetches up to maxLen bytes (0: the server's default)
// of shard i's committed canonical image, identified by the hash a
// SyncShardHashes call advertised, starting at offset. more reports
// that the image continues past the returned bytes. A hash superseded
// by a newer checkpoint fails with a RemoteError carrying
// proto.ErrCodeStale — re-fetch the hashes and retry. Callers
// assembling a whole image must verify its SHA-256 against the
// advertised hash.
func (c *Conn) SyncShardChunk(i int, hash [32]byte, offset uint64, maxLen int) (data []byte, more bool, err error) {
	f, err := c.call(proto.OpSync, proto.AppendSyncReq(nil, uint32(i), hash, offset, uint32(maxLen)))
	if err != nil {
		return nil, false, err
	}
	return proto.DecodeSyncChunk(f.Payload)
}

// Health fetches the server's role and checkpoint position: whether it
// is read-only, how many times the process has been promoted, its
// checkpoint epoch, and the SHA-256 of its committed manifest. The
// server answers without queueing behind writes, so Health stays
// responsive as a liveness probe even when the write path is backed
// up. Two nodes serving identical checkpoints report identical hashes.
func (c *Conn) Health() (Health, error) {
	f, err := c.call(proto.OpHealth, nil)
	if err != nil {
		return Health{}, err
	}
	h, err := proto.DecodeHealth(f.Payload)
	if err == nil {
		c.noteEpoch(h.Epoch)
	}
	return h, err
}

// Promote asks a read replica to become the writable primary and
// returns the node's promotion count. A node that is already writable
// refuses with an error satisfying errors.Is(err, ErrNotReplica).
// Promotion is in-memory and wire-visible only; the caller is
// responsible for making sure the old primary is actually gone.
func (c *Conn) Promote() (uint64, error) {
	f, err := c.call(proto.OpPromote, nil)
	if err != nil {
		return 0, err
	}
	return proto.DecodeU64(f.Payload)
}

// Ping round-trips payload (may be nil) through the server.
func (c *Conn) Ping(payload []byte) error {
	f, err := c.call(proto.OpPing, payload)
	if err != nil {
		return err
	}
	if string(f.Payload) != string(payload) {
		return fmt.Errorf("client: ping echoed %d bytes, sent %d", len(f.Payload), len(payload))
	}
	return nil
}
