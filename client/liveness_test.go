package client

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/server"
)

// White-box tests for the pool's self-healing and close-error
// semantics: they reach into Client's slots, so they live in the
// package rather than client_test.

func startTestServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	db, err := durable.Open("db", &durable.Options{
		Shards: 4, Seed: 7, NoBackground: true, FS: durable.NewMemFS(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.Config{SweepInterval: -1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return ln.Addr().String(), func() {
		srv.Close()
		db.Close()
	}
}

// TestPoolRecoversFromKilledConn severs one pooled connection's socket
// mid-load and proves the pool heals: requests keep succeeding on the
// surviving connections, and the dead slot is redialed so that every
// slot eventually holds a live connection again — no permanently
// failing slot.
func TestPoolRecoversFromKilledConn(t *testing.T) {
	addr, stop := startTestServer(t)
	defer stop()
	cl, err := Open(addr, 3, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	victim := cl.slots[1].conn.Load()
	// Sever the transport underneath the Conn — the failure mode of a
	// network fault or server-side disconnect, not a client Close.
	victim.nc.Close()

	// Drive load. Requests that land on the severed conn fail with
	// ErrConnClosed (the pool does not replay); everything else must
	// succeed, and the failures must stop once the slot is skipped.
	failures := 0
	for i := int64(0); i < 400; i++ {
		if _, err := cl.Put(i, i*2); err != nil {
			if !errors.Is(err, ErrConnClosed) {
				t.Fatalf("put %d: unexpected error: %v", i, err)
			}
			failures++
		}
	}
	// The broken conn can absorb at most the requests routed to it
	// before its failure is observed; if errors kept flowing for the
	// whole run, the pool never routed around the dead slot.
	if failures > 100 {
		t.Fatalf("%d/400 puts failed: pool kept routing to the dead conn", failures)
	}

	// The severed slot must come back: a live, working connection in
	// every slot within the redial budget.
	deadline := time.Now().Add(10 * time.Second)
	for {
		healthy := 0
		for i := range cl.slots {
			if c := cl.slots[i].conn.Load(); c != nil && !c.broken() {
				healthy++
			}
		}
		if healthy == len(cl.slots) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d slots healthy after redial window", healthy, len(cl.slots))
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i := range cl.slots {
		if _, err := cl.slots[i].conn.Load().Put(int64(1000+i), 1); err != nil {
			t.Fatalf("slot %d unusable after recovery: %v", i, err)
		}
	}
	if cl.slots[1].conn.Load() == victim {
		t.Fatal("severed slot still holds the dead conn")
	}
}

// errCloseConn wraps a net.Conn to make Close report a fixed error
// after actually closing, modeling a transport whose teardown fails.
type errCloseConn struct {
	net.Conn
	err error
}

func (c *errCloseConn) Close() error {
	c.Conn.Close()
	return c.err
}

// TestConnCloseReturnsSocketError checks that Conn.Close surfaces the
// socket's close error exactly once: the teardown call reports it,
// every later Close (idempotent double-close) returns nil.
func TestConnCloseReturnsSocketError(t *testing.T) {
	sentinel := errors.New("teardown failed")
	p1, p2 := net.Pipe()
	defer p2.Close()
	c := NewConn(&errCloseConn{Conn: p1, err: sentinel})
	if err := c.Close(); !errors.Is(err, sentinel) {
		t.Fatalf("first Close = %v, want the socket error", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil (idempotent)", err)
	}
	if !c.broken() {
		t.Fatal("closed conn not marked broken")
	}
}

// TestClientCloseReturnsFirstError checks that the pool's Close
// propagates the first per-conn close error instead of swallowing it,
// while still closing every connection.
func TestClientCloseReturnsFirstError(t *testing.T) {
	sentinel := errors.New("slot 1 teardown failed")
	cl := &Client{slots: make([]poolSlot, 3)}
	var peers []net.Conn
	for i := range cl.slots {
		p1, p2 := net.Pipe()
		peers = append(peers, p2)
		nc := net.Conn(p1)
		if i == 1 {
			nc = &errCloseConn{Conn: p1, err: sentinel}
		}
		cl.slots[i].conn.Store(NewConn(nc))
	}
	defer func() {
		for _, p := range peers {
			p.Close()
		}
	}()
	if err := cl.Close(); !errors.Is(err, sentinel) {
		t.Fatalf("Close = %v, want first conn error", err)
	}
	for i := range cl.slots {
		if !cl.slots[i].conn.Load().broken() {
			t.Fatalf("conn %d left open after pool Close", i)
		}
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("second pool Close = %v, want nil", err)
	}
}

// TestRedialStopsAfterClose checks that a pool closed while a slot is
// mid-redial does not resurrect connections: any conn a racing redial
// establishes is closed, not leaked into service.
func TestRedialStopsAfterClose(t *testing.T) {
	addr, stop := startTestServer(t)
	defer stop()
	cl, err := Open(addr, 2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cl.slots[0].conn.Load().nc.Close()
	cl.Conn() //nolint:errcheck // notice the dead conn; kick off the redial
	cl.Close()
	// Give any racing redial time to land, then verify every slot's
	// conn is closed.
	deadline := time.Now().Add(3 * time.Second)
	for {
		allBroken := true
		for i := range cl.slots {
			if c := cl.slots[i].conn.Load(); c != nil && !c.broken() {
				allBroken = false
			}
		}
		if allBroken && !cl.slots[0].redialing.Load() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("redial outlived pool Close")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
