package client

import "repro/internal/obs"

// clientMetrics is the pool-health metric set: how often connections
// break and get redialed, how deep the in-flight pipeline runs, and
// the client-observed request latency. Conns made by plain Dial/Open
// share a default instance backed by a nil registry — live metrics,
// nothing scraped — so the call path never branches on observability.
// Nothing here can carry a key or value: request opcodes, counts, and
// durations only.
type clientMetrics struct {
	redials       *obs.Counter   // broken connections successfully replaced
	redialFails   *obs.Counter   // redial attempts that failed (and backed off)
	brokenSkips   *obs.Counter   // round-robin picks that skipped a dead conn
	failovers     *obs.Counter   // completed pool failovers to another endpoint
	requestErrors *obs.Counter   // calls that returned an error (remote or transport)
	inflight      *obs.Gauge     // requests awaiting replies right now
	reqSecs       *obs.Histogram // request latency, send to reply (client view)
}

func newClientMetrics(r *obs.Registry) *clientMetrics {
	return &clientMetrics{
		redials:       r.Counter("hidb_client_redials_total", "broken pool connections successfully replaced"),
		redialFails:   r.Counter("hidb_client_redial_failures_total", "redial attempts that failed and backed off"),
		brokenSkips:   r.Counter("hidb_client_broken_skips_total", "pool picks that skipped a broken connection"),
		failovers:     r.Counter("hidb_client_failovers_total", "completed pool failovers to another endpoint"),
		requestErrors: r.Counter("hidb_client_request_errors_total", "requests that returned an error, remote or transport"),
		inflight:      r.Gauge("hidb_client_inflight", "requests currently awaiting replies"),
		reqSecs:       r.Histogram("hidb_client_request_seconds", "request latency from send to reply, as the client sees it", obs.UnitSeconds),
	}
}

// defaultClientMetrics backs every Conn that was not built through
// OpenObserved: recording works, scraping just never sees it.
var defaultClientMetrics = newClientMetrics(nil)
