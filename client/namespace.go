package client

// Namespace operations: per-tenant keyspaces addressed by name. Every
// method mirrors its default-keyspace counterpart scoped to one
// tenant; DropNS is the tenant-erasure barrier — when it returns true,
// the server has already committed a checkpoint with no trace of the
// tenant (see docs/PROTOCOL.md, "Namespaces").

import (
	"errors"
	"fmt"

	"repro/internal/proto"
)

// ErrQuota is wrapped into the error an NSPut gets back when the
// tenant is at the server's per-tenant key quota (server code
// ErrCodeQuota). Check it with errors.Is; the connection stays usable.
var ErrQuota = errors.New("client: namespace is at its key quota")

// NSStat re-exports one LISTNS entry: a tenant name and its live key
// count. Listings are byte-sorted by name — canonical order, never
// creation order.
type NSStat = proto.NSStat

// NSPut upserts the value for key in the named tenant's keyspace
// (creating the tenant on first write) and reports whether the key was
// newly inserted.
func (c *Conn) NSPut(ns string, key, val int64) (inserted bool, err error) {
	return c.NSPutTTL(ns, key, val, 0)
}

// NSPutTTL is NSPut with an absolute expiry epoch (unix seconds; 0:
// never expires). A tenant at the server's per-tenant quota refuses
// inserts of new keys with an error satisfying errors.Is(err,
// ErrQuota); upserts of existing keys always pass.
func (c *Conn) NSPutTTL(ns string, key, val, exp int64) (inserted bool, err error) {
	f, err := c.call(proto.OpNSPut, proto.AppendNSKeyValExp(nil, ns, key, val, exp))
	if err != nil {
		return false, err
	}
	inserted, echoed, err := proto.DecodeTTLAck(f.Payload)
	if err != nil {
		return false, err
	}
	if echoed != exp {
		return inserted, fmt.Errorf("client: ns-put echoed expiry %d, sent %d", echoed, exp)
	}
	return inserted, nil
}

// NSGet returns the value stored for key in the named tenant's
// keyspace. An absent tenant reads exactly like an absent key.
func (c *Conn) NSGet(ns string, key int64) (val int64, ok bool, err error) {
	val, _, ok, err = c.NSGetTTL(ns, key)
	return val, ok, err
}

// NSGetTTL returns the value and recorded absolute expiry (0: none)
// for key in the named tenant's keyspace, and whether the key is live.
func (c *Conn) NSGetTTL(ns string, key int64) (val, exp int64, ok bool, err error) {
	f, err := c.call(proto.OpNSGet, proto.AppendNSKey(nil, ns, key))
	if err != nil {
		return 0, 0, false, err
	}
	val, exp, epoch, ok, err := proto.DecodeFoundTTL(f.Payload)
	if err == nil {
		c.noteEpoch(epoch)
	}
	return val, exp, ok, err
}

// NSDelete removes key from the named tenant's keyspace and reports
// whether it was present.
func (c *Conn) NSDelete(ns string, key int64) (deleted bool, err error) {
	f, err := c.call(proto.OpNSDel, proto.AppendNSKey(nil, ns, key))
	if err != nil {
		return false, err
	}
	return proto.DecodeBool(f.Payload)
}

// DropNS erases the named tenant and reports whether it existed. This
// is a durability barrier with an erasure guarantee: a true return
// means the server has dropped the tenant's cell, committed a
// checkpoint whose manifest omits it, and zero-wiped and unlinked its
// image files — the on-disk state is byte-identical to one where the
// tenant never existed. Dropping an absent tenant returns false and
// commits nothing.
func (c *Conn) DropNS(ns string) (existed bool, err error) {
	f, err := c.call(proto.OpDropNS, proto.AppendNSName(nil, ns))
	if err != nil {
		return false, err
	}
	return proto.DecodeBool(f.Payload)
}

// ListNS returns the server's per-tenant key quota (0: unlimited) and
// the live tenants with their live key counts, byte-sorted by name.
// Tenants with no live keys are not listed.
func (c *Conn) ListNS() (quota uint64, tenants []NSStat, err error) {
	f, err := c.call(proto.OpListNS, nil)
	if err != nil {
		return 0, nil, err
	}
	return proto.DecodeNSList(f.Payload)
}

// SyncShardHashesNS is SyncShardHashes plus the committed
// namespace-name table: the tenants present in the server's last
// committed checkpoint, byte-sorted. An anti-entropy round starts here
// to discover what to mirror.
func (c *Conn) SyncShardHashesNS() (hseed uint64, entries []ShardHash, names []string, err error) {
	f, err := c.call(proto.OpShardHash, nil)
	if err != nil {
		return 0, nil, nil, err
	}
	return proto.DecodeShardHashesNS(f.Payload)
}

// SyncNSShardHashes fetches the named tenant's committed checkpoint
// descriptor: the tenant's derived routing seed and, per shard, the
// canonical image's size and SHA-256. A tenant absent from the last
// committed checkpoint fails with a RemoteError.
func (c *Conn) SyncNSShardHashes(ns string) (nsHseed uint64, entries []ShardHash, err error) {
	f, err := c.call(proto.OpShardHash, proto.AppendNSName(nil, ns))
	if err != nil {
		return 0, nil, err
	}
	return proto.DecodeShardHashes(f.Payload)
}

// SyncNSShardChunk is SyncShardChunk addressed at the named tenant's
// shard i. The same staleness contract applies: a hash superseded by a
// newer checkpoint fails with proto.ErrCodeStale.
func (c *Conn) SyncNSShardChunk(ns string, i int, hash [32]byte, offset uint64, maxLen int) (data []byte, more bool, err error) {
	f, err := c.call(proto.OpSync, proto.AppendSyncReqNS(nil, uint32(i), hash, offset, uint32(maxLen), ns))
	if err != nil {
		return nil, false, err
	}
	return proto.DecodeSyncChunk(f.Payload)
}

// NSPut upserts the value for key in the named tenant's keyspace on one
// pool connection and reports whether it was newly inserted.
func (cl *Client) NSPut(ns string, key, val int64) (ok bool, err error) {
	err = cl.do(func(c *Conn) (e error) { ok, e = c.NSPut(ns, key, val); return })
	return ok, err
}

// NSPutTTL is NSPut with an absolute expiry epoch (0: never expires).
func (cl *Client) NSPutTTL(ns string, key, val, exp int64) (ok bool, err error) {
	err = cl.do(func(c *Conn) (e error) { ok, e = c.NSPutTTL(ns, key, val, exp); return })
	return ok, err
}

// NSGet returns the value stored for key in the named tenant's
// keyspace and whether it exists.
func (cl *Client) NSGet(ns string, key int64) (val int64, ok bool, err error) {
	err = cl.do(func(c *Conn) (e error) { val, ok, e = c.NSGet(ns, key); return })
	return val, ok, err
}

// NSGetTTL returns the value and recorded absolute expiry (0: none)
// for key in the named tenant's keyspace, and whether the key is live.
func (cl *Client) NSGetTTL(ns string, key int64) (val, exp int64, ok bool, err error) {
	err = cl.do(func(c *Conn) (e error) { val, exp, ok, e = c.NSGetTTL(ns, key); return })
	return val, exp, ok, err
}

// NSDelete removes key from the named tenant's keyspace and reports
// whether it was present.
func (cl *Client) NSDelete(ns string, key int64) (ok bool, err error) {
	err = cl.do(func(c *Conn) (e error) { ok, e = c.NSDelete(ns, key); return })
	return ok, err
}

// DropNS erases the named tenant; see Conn.DropNS for the durability
// and erasure guarantee a true return carries.
func (cl *Client) DropNS(ns string) (existed bool, err error) {
	err = cl.do(func(c *Conn) (e error) { existed, e = c.DropNS(ns); return })
	return existed, err
}

// ListNS returns the server's per-tenant quota and the live tenants
// with their key counts, byte-sorted by name.
func (cl *Client) ListNS() (quota uint64, tenants []NSStat, err error) {
	err = cl.do(func(c *Conn) (e error) { quota, tenants, e = c.ListNS(); return })
	return quota, tenants, err
}
