package client

// White-box tests for the pool's HA surface: ErrNoHealthyConn when
// every slot is dead, deterministic redial backoff through the
// injectable sleeper, and endpoint failover after a primary's death or
// an ErrReadOnly refusal.

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/server"
)

// startRoleServer is startTestServer with the node's role exposed: the
// returned server handle lets a test promote the node mid-life.
func startRoleServer(t *testing.T, readOnly bool) (addr string, srv *server.Server, stop func()) {
	t.Helper()
	db, err := durable.Open("db", &durable.Options{
		Shards: 4, Seed: 7, NoBackground: true, NoSweep: readOnly, FS: durable.NewMemFS(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv = server.New(db, server.Config{SweepInterval: -1, ReadOnly: readOnly})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return ln.Addr().String(), srv, func() {
		srv.Close()
		db.Close()
	}
}

// TestConnErrNoHealthyConn severs every slot's transport and checks
// Conn reports the typed sentinel instead of handing out a corpse.
func TestConnErrNoHealthyConn(t *testing.T) {
	addr, _, stop := startRoleServer(t, false)
	defer stop()
	cl, err := Open(addr, 3, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Conn(); err != nil {
		t.Fatalf("healthy pool: %v", err)
	}
	for i := range cl.slots {
		cl.slots[i].conn.Load().nc.Close()
	}
	// The reader goroutines notice the severed sockets asynchronously;
	// once they all have, Conn must fail typed, not hand out a broken
	// conn or block.
	deadline := time.Now().Add(3 * time.Second)
	for {
		_, err := cl.Conn()
		if err != nil {
			if !errors.Is(err, ErrNoHealthyConn) {
				t.Fatalf("err = %v, want ErrNoHealthyConn in the chain", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Conn never reported ErrNoHealthyConn with every slot severed")
		}
		time.Sleep(time.Millisecond)
	}
	// The pool-level operations wrap the same sentinel (single-endpoint
	// pool: no failover to mask it). The server is still up, so a
	// background redial may heal a slot at any moment; either a typed
	// error or a successful post-heal read is correct, anything else is
	// a bug.
	if _, _, err := cl.Get(1); err != nil && !errors.Is(err, ErrNoHealthyConn) {
		t.Fatalf("Get err = %v, want ErrNoHealthyConn or success after heal", err)
	}
}

// TestRedialBackoffDeterministic drives the redial loop's backoff
// through an injected sleeper against an unreachable address and
// checks the exact exponential schedule — no wall-clock time passes.
func TestRedialBackoffDeterministic(t *testing.T) {
	// A listener that is closed immediately: the address is syntactically
	// valid and fast-refusing, so every dial fails promptly.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	addr, _, stop := startRoleServer(t, false)
	defer stop()
	cl, err := Open(addr, 1, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var mu sync.Mutex
	var slept []time.Duration
	enough := make(chan struct{})
	cl.sleep = func(d time.Duration) {
		mu.Lock()
		slept = append(slept, d)
		if len(slept) == 8 {
			close(enough)
		}
		n := len(slept)
		mu.Unlock()
		if n >= 8 {
			// Park until Close so the loop stops burning dials once the
			// schedule is captured.
			for !cl.closed.Load() {
				time.Sleep(time.Millisecond)
			}
		}
	}
	// Point the pool at the dead address and sever its conn: the redial
	// loop now fails every dial and walks the backoff schedule.
	cl.endpoints[0] = deadAddr
	cl.slots[0].conn.Load().nc.Close()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, err := cl.Conn(); err != nil {
			break // broken conn noticed, redial kicked
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never went broken")
		}
		time.Sleep(time.Millisecond)
	}

	select {
	case <-enough:
	case <-time.After(5 * time.Second):
		t.Fatal("redial loop did not back off 8 times")
	}
	mu.Lock()
	defer mu.Unlock()
	want := []time.Duration{
		20 * time.Millisecond, 40 * time.Millisecond, 80 * time.Millisecond,
		160 * time.Millisecond, 320 * time.Millisecond, 640 * time.Millisecond,
		time.Second, time.Second, // capped
	}
	for i, w := range want {
		if slept[i] != w {
			t.Fatalf("backoff[%d] = %v, want %v (schedule %v)", i, slept[i], w, slept[:8])
		}
	}
}

// TestFailoverOnReadOnly opens the pool ranked [replica, primary]: the
// first write hits the read-only node, is refused with ErrReadOnly,
// and must transparently land on the writable endpoint — exactly once,
// no replay.
func TestFailoverOnReadOnly(t *testing.T) {
	rAddr, _, rStop := startRoleServer(t, true)
	defer rStop()
	pAddr, _, pStop := startRoleServer(t, false)
	defer pStop()

	cl, err := OpenEndpoints([]string{rAddr, pAddr}, 2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if ins, err := cl.Put(1, 100); err != nil || !ins {
		t.Fatalf("put through failover: %v %v", ins, err)
	}
	if cl.Endpoint() != pAddr {
		t.Fatalf("pool still pointed at %s, want writable %s", cl.Endpoint(), pAddr)
	}
	if v, ok, err := cl.Get(1); err != nil || !ok || v != 100 {
		t.Fatalf("read-back: %d %v %v", v, ok, err)
	}
}

// TestFailoverAfterPrimaryDeath kills the primary under a two-endpoint
// pool, promotes the replica, and checks writes resume on the promoted
// node without any request replay.
func TestFailoverAfterPrimaryDeath(t *testing.T) {
	pAddr, _, pStop := startRoleServer(t, false)
	rAddr, rSrv, rStop := startRoleServer(t, true)
	defer rStop()

	cl, err := OpenEndpoints([]string{pAddr, rAddr}, 2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Put(1, 11); err != nil {
		t.Fatalf("pre-failover put: %v", err)
	}

	pStop() // the primary is gone, conns die
	if n, err := rSrv.Promote(); err != nil || n != 1 {
		t.Fatalf("promote: %d %v", n, err)
	}

	// Writes must come back once the pool notices and fails over. The
	// first attempts may still race the reader goroutines marking conns
	// broken (those die as ErrConnClosed, never replayed) — but within
	// the deadline a write must land on the promoted node.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := cl.Put(2, 22)
		if err == nil {
			break
		}
		if errors.Is(err, ErrConnClosed) || errors.Is(err, ErrNoHealthyConn) || errors.Is(err, ErrReadOnly) {
			if time.Now().After(deadline) {
				t.Fatalf("writes never resumed after failover: %v", err)
			}
			time.Sleep(5 * time.Millisecond)
			continue
		}
		t.Fatalf("unexpected error class during failover: %v", err)
	}
	if cl.Endpoint() != rAddr {
		t.Fatalf("pool pointed at %s after failover, want %s", cl.Endpoint(), rAddr)
	}
	if v, ok, err := cl.Get(2); err != nil || !ok || v != 22 {
		t.Fatalf("read from promoted node: %d %v %v", v, ok, err)
	}
	h, err := cl.Health()
	if err != nil || h.ReadOnly || h.Promotions != 1 {
		t.Fatalf("promoted node health = %+v, %v", h, err)
	}
}

// TestFailoverProbeBounded pins the per-probe deadline regression: an
// endpoint that accepts the TCP connection but never answers HEALTH —
// a half-dead process, a black-holing middlebox — must not wedge the
// failover sweep, even on a pool opened with no request timeout. The
// probe clamps each endpoint to maxProbeTimeout and moves on.
func TestFailoverProbeBounded(t *testing.T) {
	blackhole, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer blackhole.Close()
	var hmu sync.Mutex
	var held []net.Conn // accepted and never answered
	go func() {
		for {
			c, err := blackhole.Accept()
			if err != nil {
				return
			}
			hmu.Lock()
			held = append(held, c)
			hmu.Unlock()
		}
	}()
	defer func() {
		hmu.Lock()
		for _, c := range held {
			c.Close()
		}
		hmu.Unlock()
	}()

	pAddr, _, pStop := startRoleServer(t, false)
	defer pStop()

	// timeout 0: the pool imposes no request timeout, so only the
	// probe's own clamp stands between the sweep and a permanent hang.
	cl, err := OpenEndpoints([]string{blackhole.Addr().String(), pAddr}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	done := make(chan bool, 1)
	go func() { done <- cl.failover() }()
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("failover found no writable node despite a healthy primary")
		}
	case <-time.After(3 * maxProbeTimeout):
		t.Fatal("failover wedged on the never-answering endpoint; per-probe deadline not applied")
	}
	if cl.Endpoint() != pAddr {
		t.Fatalf("pool pointed at %s after the sweep, want %s", cl.Endpoint(), pAddr)
	}
	if _, err := cl.Put(1, 1); err != nil {
		t.Fatalf("put after failover: %v", err)
	}
}

// TestPromoteWireErrNotReplica checks the typed refusal for a PROMOTE
// aimed at a node that is already writable.
func TestPromoteWireErrNotReplica(t *testing.T) {
	addr, _, stop := startRoleServer(t, false)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Promote(); !errors.Is(err, ErrNotReplica) {
		t.Fatalf("promoting a primary: %v, want ErrNotReplica", err)
	}
	// The refusal must not poison the connection.
	if err := c.Ping(nil); err != nil {
		t.Fatalf("connection dead after refused promote: %v", err)
	}
}
