package client_test

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/internal/durable"
	"repro/internal/proto"
	"repro/internal/server"
)

func startServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	db, err := durable.Open("db", &durable.Options{
		Shards: 4, Seed: 7, NoBackground: true, FS: durable.NewMemFS(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return ln.Addr().String(), func() {
		srv.Close()
		db.Close()
	}
}

// TestPool drives the pooled Client concurrently and checks that the
// pool spreads work across its connections.
func TestPool(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()
	cl, err := client.Open(addr, 3, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < 50; i++ {
				k := base*100 + i
				if _, err := cl.Put(k, k); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if n, err := cl.Len(); err != nil || n != 400 {
		t.Fatalf("len = %d (%v), want 400", n, err)
	}
	vals, ok, err := cl.GetBatch([]int64{0, 101, 999999})
	if err != nil || !ok[0] || !ok[1] || ok[2] || vals[1] != 101 {
		t.Fatalf("get batch: %v %v %v", vals, ok, err)
	}
	if cps, err := cl.Checkpoint(); err != nil || cps == 0 {
		t.Fatalf("checkpoint: %d %v", cps, err)
	}
	if err := cl.Ping([]byte("x")); err != nil {
		t.Fatal(err)
	}
	// Distinct pool connections really exist: Conn() cycles.
	c1, err1 := cl.Conn()
	c2, err2 := cl.Conn()
	if err1 != nil || err2 != nil {
		t.Fatalf("conn from healthy pool: %v %v", err1, err2)
	}
	if c1 == c2 {
		t.Fatal("pool of 3 returned the same conn twice in a row")
	}
}

// TestConnClosedErrors checks that operations on a dead connection
// surface ErrConnClosed rather than hanging.
func TestConnClosedErrors(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(1, 1); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, _, err := c.Get(1); !errors.Is(err, client.ErrConnClosed) {
		t.Fatalf("get on closed conn: %v", err)
	}
	if _, err := c.Put(2, 2); !errors.Is(err, client.ErrConnClosed) {
		t.Fatalf("put on closed conn: %v", err)
	}
}

// TestServerGoneMidFlight checks that requests in flight when the
// server dies fail with an error instead of hanging forever.
func TestServerGoneMidFlight(t *testing.T) {
	addr, stop := startServer(t)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Put(1, 1); err != nil {
		t.Fatal(err)
	}
	stop()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, _, err := c.Get(1); err != nil {
			break // the dead conn surfaced
		}
		if time.Now().After(deadline) {
			t.Fatal("requests kept succeeding after server close")
		}
	}
}

// TestReadOnlyRemoteError checks the read-only error path: every
// mutating operation against a replica surfaces a typed RemoteError
// carrying ErrCodeReadOnly AND matches the ErrReadOnly sentinel, while
// the same connection keeps serving reads — the write-path twin of
// TestRemoteErrorSurface.
func TestReadOnlyRemoteError(t *testing.T) {
	db, err := durable.Open("db", &durable.Options{
		Shards: 4, Seed: 7, NoBackground: true, FS: durable.NewMemFS(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.Put(10, 100)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.Config{ReadOnly: true})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	wantReadOnly := func(what string, err error) {
		t.Helper()
		if !errors.Is(err, client.ErrReadOnly) {
			t.Fatalf("%s on replica: %v, want ErrReadOnly in the chain", what, err)
		}
		var re *proto.RemoteError
		if !errors.As(err, &re) || re.Code != proto.ErrCodeReadOnly {
			t.Fatalf("%s on replica: %v, want RemoteError{ErrCodeReadOnly}", what, err)
		}
	}
	_, err = c.Put(1, 1)
	wantReadOnly("put", err)
	_, err = c.Delete(10)
	wantReadOnly("delete", err)
	_, err = c.PutBatch([]client.Item{{Key: 2, Val: 2}})
	wantReadOnly("put batch", err)
	_, err = c.DeleteBatch([]int64{10})
	wantReadOnly("delete batch", err)
	_, err = c.Checkpoint()
	wantReadOnly("checkpoint", err)

	// The refusals must not have poisoned the connection: reads work and
	// see the replica's installed state, and the write never applied.
	if v, ok, err := c.Get(10); err != nil || !ok || v != 100 {
		t.Fatalf("get after refusals: %d %v %v", v, ok, err)
	}
	if _, ok, err := c.Get(1); err != nil || ok {
		t.Fatalf("refused put leaked into the store: %v %v", ok, err)
	}
	if vals, ok, err := c.GetBatch([]int64{10}); err != nil || !ok[0] || vals[0] != 100 {
		t.Fatalf("batch get on replica: %v %v %v", vals, ok, err)
	}
	if n, err := c.Len(); err != nil || n != 1 {
		t.Fatalf("len on replica: %d %v", n, err)
	}
}

// TestRemoteErrorSurface checks that a server-side rejection arrives as
// a typed RemoteError.
func TestRemoteErrorSurface(t *testing.T) {
	db, err := durable.Open("db", &durable.Options{
		Shards: 4, Seed: 7, NoBackground: true, FS: durable.NewMemFS(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := server.New(db, server.Config{MaxConns: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	c1, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if err := c1.Ping(nil); err != nil {
		t.Fatal(err)
	}
	c2, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	err = c2.Ping(nil)
	var re *proto.RemoteError
	if !errors.As(err, &re) || re.Code != proto.ErrCodeBusy {
		t.Fatalf("over-limit conn: %v", err)
	}
}

// TestTTLRoundTrip drives PutTTL/GetTTL through both the Conn and the
// pooled Client, including the expiry echo and the expired-read path.
func TestTTLRoundTrip(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()
	cl, err := client.Open(addr, 2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// The test server runs the system clock, so a far-future expiry is
	// live and a 1970s expiry is long dead.
	farFuture := time.Now().Unix() + 3600
	if ins, err := cl.PutTTL(1, 10, farFuture); err != nil || !ins {
		t.Fatalf("put-ttl: %v %v", ins, err)
	}
	if v, exp, ok, err := cl.GetTTL(1); err != nil || !ok || v != 10 || exp != farFuture {
		t.Fatalf("get-ttl: %d %d %v %v", v, exp, ok, err)
	}
	if v, ok, err := cl.Get(1); err != nil || !ok || v != 10 {
		t.Fatalf("plain get of live ttl entry: %d %v %v", v, ok, err)
	}
	// An entry whose expiry is already past reads as absent immediately
	// (lazy filtering; no sweeper needs to run).
	if ins, err := cl.PutTTL(2, 20, 1000); err != nil || !ins {
		t.Fatalf("dead-on-arrival put-ttl: %v %v", ins, err)
	}
	if _, _, ok, err := cl.GetTTL(2); err != nil || ok {
		t.Fatalf("expired entry visible: %v %v", ok, err)
	}
	// Rewriting it is a fresh insert.
	cc, err := cl.Conn()
	if err != nil {
		t.Fatal(err)
	}
	if ins, err := cc.PutTTL(2, 21, farFuture); err != nil || !ins {
		t.Fatalf("resurrect: %v %v", ins, err)
	}
	if v, exp, ok, err := cc.GetTTL(2); err != nil || !ok || v != 21 || exp != farFuture {
		t.Fatalf("resurrected: %d %d %v %v", v, exp, ok, err)
	}
	// Absent key: found=false with zero value and expiry.
	if v, exp, ok, err := cl.GetTTL(999); err != nil || ok || v != 0 || exp != 0 {
		t.Fatalf("absent get-ttl: %d %d %v %v", v, exp, ok, err)
	}
	// Negative expiry is a client-side arithmetic bug; the server
	// refuses it without killing the connection.
	if _, err := cc.PutTTL(3, 30, -1); err == nil {
		t.Fatal("negative expiry accepted")
	}
	var rerr *proto.RemoteError
	if _, err := cc.PutTTL(3, 30, -1); !errors.As(err, &rerr) || rerr.Code != proto.ErrCodeBadFrame {
		t.Fatalf("negative expiry error = %v, want ErrCodeBadFrame", err)
	}
	if err := cl.Ping(nil); err != nil {
		t.Fatalf("connection dead after refused put-ttl: %v", err)
	}
}
