package client

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Client is a fixed-size pool of pipelined Conns to one server,
// spreading requests round-robin. One Conn already pipelines, but its
// replies arrive on a single reader goroutine; a small pool keeps many
// CPU-bound callers from serializing behind it. All methods are safe
// for concurrent use.
type Client struct {
	conns []*Conn
	next  atomic.Uint64
}

// Open dials nconns connections (minimum 1) to addr. timeout bounds
// each dial and each request's reply wait (0: none).
func Open(addr string, nconns int, timeout time.Duration) (*Client, error) {
	if nconns < 1 {
		nconns = 1
	}
	cl := &Client{conns: make([]*Conn, nconns)}
	for i := range cl.conns {
		c, err := DialTimeout(addr, timeout)
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("client: conn %d/%d: %w", i+1, nconns, err)
		}
		cl.conns[i] = c
	}
	return cl, nil
}

// Conn returns one of the pool's connections, round-robin. Use it when
// an operation sequence needs the per-connection ordering guarantee
// (e.g. a put then a get that must observe it, without waiting for the
// put reply on the same goroutine).
func (cl *Client) Conn() *Conn {
	return cl.conns[cl.next.Add(1)%uint64(len(cl.conns))]
}

// Close closes every connection in the pool.
func (cl *Client) Close() error {
	for _, c := range cl.conns {
		if c != nil {
			c.Close()
		}
	}
	return nil
}

// Get returns the value stored for key and whether it exists.
func (cl *Client) Get(key int64) (int64, bool, error) { return cl.Conn().Get(key) }

// Put upserts the value for key and reports whether it was newly
// inserted.
func (cl *Client) Put(key, val int64) (bool, error) { return cl.Conn().Put(key, val) }

// PutTTL upserts the value for key with an absolute expiry epoch (unix
// seconds; 0: never expires) and reports whether it was newly inserted.
func (cl *Client) PutTTL(key, val, exp int64) (bool, error) { return cl.Conn().PutTTL(key, val, exp) }

// GetTTL returns the value and recorded absolute expiry (0: none) for
// key, and whether the key is live.
func (cl *Client) GetTTL(key int64) (val, exp int64, ok bool, err error) {
	return cl.Conn().GetTTL(key)
}

// Delete removes key and reports whether it was present.
func (cl *Client) Delete(key int64) (bool, error) { return cl.Conn().Delete(key) }

// PutBatch upserts every item in one request and returns the number of
// keys newly inserted.
func (cl *Client) PutBatch(items []Item) (int, error) { return cl.Conn().PutBatch(items) }

// GetBatch looks up every key in one request; values and presence
// flags align with keys.
func (cl *Client) GetBatch(keys []int64) ([]int64, []bool, error) { return cl.Conn().GetBatch(keys) }

// DeleteBatch removes every key in one request and returns the number
// that were present.
func (cl *Client) DeleteBatch(keys []int64) (int, error) { return cl.Conn().DeleteBatch(keys) }

// Range returns up to max items with lo <= key <= hi in ascending key
// order; more reports truncation (resume with lo = last key + 1).
func (cl *Client) Range(lo, hi int64, max int) ([]Item, bool, error) {
	return cl.Conn().Range(lo, hi, max)
}

// Len returns the number of keys in the database.
func (cl *Client) Len() (int, error) { return cl.Conn().Len() }

// Checkpoint commits a checkpoint; when it returns, every operation
// acknowledged on the chosen connection is on disk. For a barrier over
// operations issued through the whole pool, checkpoint after the
// operations' replies have been received.
func (cl *Client) Checkpoint() (uint64, error) { return cl.Conn().Checkpoint() }

// Ping round-trips a payload through the server on one connection.
func (cl *Client) Ping(payload []byte) error { return cl.Conn().Ping(payload) }
