package client

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Redial backoff bounds: the first attempt after a slot's connection
// breaks waits redialMinBackoff, doubling per failure up to
// redialMaxBackoff, so a down server costs a bounded trickle of dials
// rather than a reconnect storm.
const (
	redialMinBackoff = 20 * time.Millisecond
	redialMaxBackoff = time.Second
)

// ErrNoHealthyConn is returned by Conn (and wrapped by every pool
// operation that needs one) when every slot's connection is broken at
// the moment of the pick. Background redials are already running; the
// caller can retry shortly, or — on a multi-endpoint pool — let the
// operation helpers trigger a failover probe instead. Check with
// errors.Is.
var ErrNoHealthyConn = errors.New("client: no healthy connection in pool")

// poolSlot is one position in the pool. The slot, not the Conn, is the
// unit of liveness: a Conn never heals once broken, but a slot replaces
// its broken Conn with a freshly dialed one, so the pool's size is
// fixed while its members turn over.
type poolSlot struct {
	conn      atomic.Pointer[Conn] // always non-nil after Open succeeds
	redialing atomic.Bool          // one redial goroutine per slot at a time
}

// Client is a fixed-size pool of pipelined Conns to one server,
// spreading requests round-robin. One Conn already pipelines, but its
// replies arrive on a single reader goroutine; a small pool keeps many
// CPU-bound callers from serializing behind it. All methods are safe
// for concurrent use.
//
// The pool is self-healing: a connection that dies (server restart,
// network fault, idle-timeout disconnect) is detected on the next Conn
// selection, skipped in favor of a live one, and redialed in the
// background with exponential backoff (20ms doubling to a 1s cap).
// In-flight requests on the dead connection still fail with
// ErrConnClosed — the pool restores capacity, it does not replay
// requests — but no slot stays dead forever while the server is
// reachable.
//
// A pool built with OpenEndpoints additionally fails over: when every
// connection is broken, or a write is refused with ErrReadOnly, the
// pool probes the ranked endpoint list with HEALTH, re-points itself
// at the writable node with the highest promotion count, and retries
// the operation exactly once. Only never-sent (ErrNoHealthyConn) and
// definitively-refused (ErrReadOnly) operations are retried; an
// operation that died in flight (ErrConnClosed) is never replayed,
// because the server may have applied it.
type Client struct {
	endpoints []string     // ranked; index 0 is the preferred primary
	cur       atomic.Int32 // index into endpoints the pool currently targets
	timeout   time.Duration
	slots     []poolSlot
	next      atomic.Uint64
	closed    atomic.Bool
	m         *clientMetrics // never nil; default is unregistered

	fomu sync.Mutex    // serializes failover probes
	gen  atomic.Uint64 // bumped after each completed failover

	// tr is the pool's span store (nil pointer: tracing off),
	// propagated to every Conn the pool dials. Pool lifecycle events —
	// dial sweeps, redials, failover probes — are rare, so they are
	// always kept, each as its own single-span trace.
	tr atomic.Pointer[trace.Store]

	// sleep is time.Sleep unless a test injects a fake to drive the
	// redial backoff deterministically.
	sleep func(time.Duration)
}

// Open dials nconns connections (minimum 1) to addr. timeout bounds
// each dial and each request's reply wait (0: none).
func Open(addr string, nconns int, timeout time.Duration) (*Client, error) {
	return OpenEndpoints([]string{addr}, nconns, timeout)
}

// OpenObserved is Open with the pool's health metrics (redials,
// broken-conn skips, failovers, in-flight depth, request latency)
// registered on reg. A nil registry degrades to plain Open: the
// metrics still record, nothing scrapes them.
func OpenObserved(addr string, nconns int, timeout time.Duration, reg *obs.Registry) (*Client, error) {
	return openEndpoints([]string{addr}, nconns, timeout, reg)
}

// OpenEndpoints dials a pool against a RANKED endpoint list: the pool
// connects to the first reachable endpoint and, when that node dies or
// turns read-only under it, fails writes over to the best surviving
// endpoint (writable, highest promotion count, earliest rank breaking
// ties). Every endpoint should be a node of the same replication
// group; the pool never splits traffic across endpoints.
func OpenEndpoints(addrs []string, nconns int, timeout time.Duration) (*Client, error) {
	return openEndpoints(addrs, nconns, timeout, nil)
}

func openEndpoints(addrs []string, nconns int, timeout time.Duration, reg *obs.Registry) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("client: no endpoints")
	}
	if nconns < 1 {
		nconns = 1
	}
	cl := &Client{
		endpoints: append([]string(nil), addrs...),
		timeout:   timeout,
		slots:     make([]poolSlot, nconns),
		sleep:     time.Sleep,
	}
	cl.m = defaultClientMetrics
	if reg != nil {
		cl.m = newClientMetrics(reg)
	}
	var firstErr error
	for start := range cl.endpoints {
		cl.cur.Store(int32(start))
		err := cl.dialAll()
		if err == nil {
			return cl, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, firstErr
}

// dialAll points every slot at the current endpoint, closing whatever
// the slot held before. All-or-nothing: on any dial failure the freshly
// dialed conns are closed and the slots keep their previous contents.
func (cl *Client) dialAll() error {
	addr := cl.addr()
	t0 := time.Now()
	fresh := make([]*Conn, len(cl.slots))
	for i := range fresh {
		c, err := DialTimeout(addr, cl.timeout)
		if err != nil {
			for _, f := range fresh[:i] {
				f.Close()
			}
			cl.traceDial(t0, len(fresh), i, errLocalFailure)
			return fmt.Errorf("client: conn %d/%d to %s: %w", i+1, len(fresh), addr, err)
		}
		c.m = cl.m
		if tr := cl.tr.Load(); tr != nil {
			c.SetTrace(tr)
		}
		fresh[i] = c
	}
	for i := range cl.slots {
		if old := cl.slots[i].conn.Swap(fresh[i]); old != nil {
			old.Close()
		}
		if cl.closed.Load() {
			fresh[i].Close()
		}
	}
	cl.traceDial(t0, len(fresh), len(fresh), 0)
	return nil
}

// traceDial records one always-kept single-span trace for a dial sweep
// that began at t0: In counts the connections wanted, Out the ones
// established (errCode nonzero when the sweep failed partway). No-op
// when tracing is off.
func (cl *Client) traceDial(t0 time.Time, wanted, dialed int, errCode byte) {
	tr := cl.tr.Load()
	if tr == nil {
		return
	}
	id := tr.NewID()
	tr.Record(trace.Span{
		Trace: id, ID: id,
		Start: t0.UnixNano(), Dur: int64(time.Since(t0)),
		Kind: trace.KindDial, Err: errCode,
		In: int32(wanted), Out: int32(dialed),
	})
}

// SetTrace wires a span store into the pool and every connection it
// currently holds; connections dialed later inherit it. See
// Conn.SetTrace. Safe to call concurrently; a nil store is ignored.
func (cl *Client) SetTrace(st *trace.Store) {
	if st == nil {
		return
	}
	cl.tr.Store(st)
	for i := range cl.slots {
		if c := cl.slots[i].conn.Load(); c != nil {
			c.SetTrace(st)
		}
	}
}

// addr returns the endpoint the pool currently targets.
func (cl *Client) addr() string { return cl.endpoints[cl.cur.Load()] }

// Endpoint reports which configured endpoint the pool is currently
// pointed at — after a failover this is the promoted node's address.
func (cl *Client) Endpoint() string { return cl.addr() }

// Conn returns one of the pool's connections, round-robin, preferring
// live ones: a slot whose connection has died is skipped (and its
// background redial kicked off) in favor of the next live slot. Use it
// when an operation sequence needs the per-connection ordering
// guarantee (e.g. a put then a get that must observe it, without
// waiting for the put reply on the same goroutine). When every
// connection is down, Conn returns ErrNoHealthyConn (errors.Is-able)
// instead of blocking on recovery; redials for every slot are already
// under way when it does.
func (cl *Client) Conn() (*Conn, error) {
	n := uint64(len(cl.slots))
	start := cl.next.Add(1)
	for i := uint64(0); i < n; i++ {
		s := &cl.slots[(start+i)%n]
		c := s.conn.Load()
		if !c.broken() {
			return c, nil
		}
		cl.m.brokenSkips.Inc()
		cl.redial(s)
	}
	return nil, ErrNoHealthyConn
}

// do runs op against a pool connection, retrying exactly once after a
// successful failover when the first attempt either never reached a
// server (ErrNoHealthyConn) or was definitively refused by a read-only
// node (ErrReadOnly). Anything else — including ErrConnClosed, where
// the server may have applied the operation — is returned as-is, never
// replayed.
func (cl *Client) do(op func(*Conn) error) error {
	c, err := cl.Conn()
	if err == nil {
		err = op(c)
	}
	if err == nil || len(cl.endpoints) < 2 {
		return err
	}
	if !errors.Is(err, ErrNoHealthyConn) && !errors.Is(err, ErrReadOnly) {
		return err
	}
	if !cl.failover() {
		return err
	}
	c, cerr := cl.Conn()
	if cerr != nil {
		return cerr
	}
	return op(c)
}

// maxProbeTimeout caps how long one failover HEALTH probe may spend on
// a single endpoint (dial plus reply). Without a cap, an endpoint that
// accepts the connection but never answers — a half-dead process, a
// black-holing middlebox — would wedge the whole probe sweep on a pool
// opened with no request timeout, and with it every operation waiting
// to fail over.
const maxProbeTimeout = 2 * time.Second

// failover probes every endpoint with HEALTH and re-points the pool at
// the best writable node: highest promotion count wins, earliest rank
// breaks ties. Probes are serialized; a caller that lost the race to a
// probe that already moved the pool just reuses that result. Each
// endpoint's probe is individually deadline-bounded (the pool timeout,
// clamped to maxProbeTimeout) so one unresponsive endpoint delays the
// sweep, never wedges it. Reports whether the pool now targets a node
// believed writable.
func (cl *Client) failover() (ok bool) {
	g := cl.gen.Load()
	cl.fomu.Lock()
	defer cl.fomu.Unlock()
	if cl.gen.Load() != g {
		// Another caller completed a failover while we waited; its
		// outcome is as fresh as anything we could probe now.
		return true
	}
	if tr := cl.tr.Load(); tr != nil {
		t0 := time.Now()
		defer func() {
			var ec byte
			if !ok {
				ec = errLocalFailure
			}
			id := tr.NewID()
			tr.Record(trace.Span{
				Trace: id, ID: id,
				Start: t0.UnixNano(), Dur: int64(time.Since(t0)),
				Kind: trace.KindFailover, Err: ec,
				In: int32(len(cl.endpoints)), Out: cl.cur.Load(),
			})
		}()
	}
	probeTO := cl.timeout
	if probeTO <= 0 || probeTO > maxProbeTimeout {
		probeTO = maxProbeTimeout
	}
	best := -1
	var bestProm uint64
	for i, addr := range cl.endpoints {
		c, err := DialTimeout(addr, probeTO)
		if err != nil {
			continue
		}
		h, err := c.Health()
		c.Close()
		if err != nil || h.ReadOnly {
			continue
		}
		if best == -1 || h.Promotions > bestProm {
			best, bestProm = i, h.Promotions
		}
	}
	if best == -1 {
		return false
	}
	cl.cur.Store(int32(best))
	if err := cl.dialAll(); err != nil {
		// The winner died between the probe and the dial. Leave cur
		// pointed at it — background redials keep trying — but report
		// failure so the caller surfaces its original error.
		return false
	}
	cl.gen.Add(1)
	cl.m.failovers.Inc()
	return true
}

// redial starts (at most) one background goroutine replacing the
// slot's broken connection. Attempts back off exponentially and stop
// when the pool is closed.
func (cl *Client) redial(s *poolSlot) {
	if cl.closed.Load() || !s.redialing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.redialing.Store(false)
		backoff := redialMinBackoff
		for !cl.closed.Load() {
			t0 := time.Now()
			c, err := DialTimeout(cl.addr(), cl.timeout)
			if err == nil {
				c.m = cl.m
				if tr := cl.tr.Load(); tr != nil {
					c.SetTrace(tr)
				}
				cl.m.redials.Inc()
				cl.traceDial(t0, 1, 1, 0)
				if old := s.conn.Swap(c); old != nil {
					old.Close()
				}
				if cl.closed.Load() {
					// Close ran while we were dialing and may have missed
					// the new conn; closing it here is idempotent either way.
					c.Close()
				}
				return
			}
			cl.m.redialFails.Inc()
			cl.sleep(backoff)
			if backoff *= 2; backoff > redialMaxBackoff {
				backoff = redialMaxBackoff
			}
		}
	}()
}

// Close closes every connection in the pool and stops background
// redials. It returns the first connection-close error encountered
// (nil in the common case); the remaining connections are still closed
// either way.
func (cl *Client) Close() error {
	cl.closed.Store(true)
	var first error
	for i := range cl.slots {
		if c := cl.slots[i].conn.Load(); c != nil {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Get returns the value stored for key and whether it exists.
func (cl *Client) Get(key int64) (val int64, ok bool, err error) {
	err = cl.do(func(c *Conn) (e error) { val, ok, e = c.Get(key); return })
	return val, ok, err
}

// Put upserts the value for key and reports whether it was newly
// inserted.
func (cl *Client) Put(key, val int64) (ok bool, err error) {
	err = cl.do(func(c *Conn) (e error) { ok, e = c.Put(key, val); return })
	return ok, err
}

// PutTTL upserts the value for key with an absolute expiry epoch (unix
// seconds; 0: never expires) and reports whether it was newly inserted.
func (cl *Client) PutTTL(key, val, exp int64) (ok bool, err error) {
	err = cl.do(func(c *Conn) (e error) { ok, e = c.PutTTL(key, val, exp); return })
	return ok, err
}

// GetTTL returns the value and recorded absolute expiry (0: none) for
// key, and whether the key is live.
func (cl *Client) GetTTL(key int64) (val, exp int64, ok bool, err error) {
	err = cl.do(func(c *Conn) (e error) { val, exp, ok, e = c.GetTTL(key); return })
	return val, exp, ok, err
}

// Delete removes key and reports whether it was present.
func (cl *Client) Delete(key int64) (ok bool, err error) {
	err = cl.do(func(c *Conn) (e error) { ok, e = c.Delete(key); return })
	return ok, err
}

// PutBatch upserts every item in one request and returns the number of
// keys newly inserted.
func (cl *Client) PutBatch(items []Item) (n int, err error) {
	err = cl.do(func(c *Conn) (e error) { n, e = c.PutBatch(items); return })
	return n, err
}

// GetBatch looks up every key in one request; values and presence
// flags align with keys.
func (cl *Client) GetBatch(keys []int64) (vals []int64, ok []bool, err error) {
	err = cl.do(func(c *Conn) (e error) { vals, ok, e = c.GetBatch(keys); return })
	return vals, ok, err
}

// DeleteBatch removes every key in one request and returns the number
// that were present.
func (cl *Client) DeleteBatch(keys []int64) (n int, err error) {
	err = cl.do(func(c *Conn) (e error) { n, e = c.DeleteBatch(keys); return })
	return n, err
}

// Range returns up to max items with lo <= key <= hi in ascending key
// order; more reports truncation (resume with lo = last key + 1).
func (cl *Client) Range(lo, hi int64, max int) (items []Item, more bool, err error) {
	err = cl.do(func(c *Conn) (e error) { items, more, e = c.Range(lo, hi, max); return })
	return items, more, err
}

// Len returns the number of keys in the database.
func (cl *Client) Len() (n int, err error) {
	err = cl.do(func(c *Conn) (e error) { n, e = c.Len(); return })
	return n, err
}

// Checkpoint commits a checkpoint; when it returns, every operation
// acknowledged on the chosen connection is on disk. For a barrier over
// operations issued through the whole pool, checkpoint after the
// operations' replies have been received.
func (cl *Client) Checkpoint() (seq uint64, err error) {
	err = cl.do(func(c *Conn) (e error) { seq, e = c.Checkpoint(); return })
	return seq, err
}

// Health fetches the current endpoint's role, promotion count, and
// checkpoint position on one connection.
func (cl *Client) Health() (h Health, err error) {
	err = cl.do(func(c *Conn) (e error) { h, e = c.Health(); return })
	return h, err
}

// Ping round-trips a payload through the server on one connection.
func (cl *Client) Ping(payload []byte) error {
	return cl.do(func(c *Conn) error { return c.Ping(payload) })
}
