package client

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Redial backoff bounds: the first attempt after a slot's connection
// breaks waits redialMinBackoff, doubling per failure up to
// redialMaxBackoff, so a down server costs a bounded trickle of dials
// rather than a reconnect storm.
const (
	redialMinBackoff = 20 * time.Millisecond
	redialMaxBackoff = time.Second
)

// poolSlot is one position in the pool. The slot, not the Conn, is the
// unit of liveness: a Conn never heals once broken, but a slot replaces
// its broken Conn with a freshly dialed one, so the pool's size is
// fixed while its members turn over.
type poolSlot struct {
	conn      atomic.Pointer[Conn] // always non-nil after Open succeeds
	redialing atomic.Bool          // one redial goroutine per slot at a time
}

// Client is a fixed-size pool of pipelined Conns to one server,
// spreading requests round-robin. One Conn already pipelines, but its
// replies arrive on a single reader goroutine; a small pool keeps many
// CPU-bound callers from serializing behind it. All methods are safe
// for concurrent use.
//
// The pool is self-healing: a connection that dies (server restart,
// network fault, idle-timeout disconnect) is detected on the next Conn
// selection, skipped in favor of a live one, and redialed in the
// background with exponential backoff (20ms doubling to a 1s cap).
// In-flight requests on the dead connection still fail with
// ErrConnClosed — the pool restores capacity, it does not replay
// requests — but no slot stays dead forever while the server is
// reachable.
type Client struct {
	addr    string
	timeout time.Duration
	slots   []poolSlot
	next    atomic.Uint64
	closed  atomic.Bool
	m       *clientMetrics // never nil; default is unregistered
}

// Open dials nconns connections (minimum 1) to addr. timeout bounds
// each dial and each request's reply wait (0: none).
func Open(addr string, nconns int, timeout time.Duration) (*Client, error) {
	return OpenObserved(addr, nconns, timeout, nil)
}

// OpenObserved is Open with the pool's health metrics (redials,
// broken-conn skips, in-flight depth, request latency) registered on
// reg. A nil registry degrades to plain Open: the metrics still
// record, nothing scrapes them.
func OpenObserved(addr string, nconns int, timeout time.Duration, reg *obs.Registry) (*Client, error) {
	if nconns < 1 {
		nconns = 1
	}
	cl := &Client{addr: addr, timeout: timeout, slots: make([]poolSlot, nconns)}
	cl.m = defaultClientMetrics
	if reg != nil {
		cl.m = newClientMetrics(reg)
	}
	for i := range cl.slots {
		c, err := DialTimeout(addr, timeout)
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("client: conn %d/%d: %w", i+1, nconns, err)
		}
		c.m = cl.m
		cl.slots[i].conn.Store(c)
	}
	return cl, nil
}

// Conn returns one of the pool's connections, round-robin, preferring
// live ones: a slot whose connection has died is skipped (and its
// background redial kicked off) in favor of the next live slot. Use it
// when an operation sequence needs the per-connection ordering
// guarantee (e.g. a put then a get that must observe it, without
// waiting for the put reply on the same goroutine). When every
// connection is down, the round-robin pick is returned anyway so the
// caller gets a prompt ErrConnClosed instead of blocking on recovery.
func (cl *Client) Conn() *Conn {
	n := uint64(len(cl.slots))
	start := cl.next.Add(1)
	for i := uint64(0); i < n; i++ {
		s := &cl.slots[(start+i)%n]
		c := s.conn.Load()
		if !c.broken() {
			return c
		}
		cl.m.brokenSkips.Inc()
		cl.redial(s)
	}
	return cl.slots[start%n].conn.Load()
}

// redial starts (at most) one background goroutine replacing the
// slot's broken connection. Attempts back off exponentially and stop
// when the pool is closed.
func (cl *Client) redial(s *poolSlot) {
	if cl.closed.Load() || !s.redialing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.redialing.Store(false)
		backoff := redialMinBackoff
		for !cl.closed.Load() {
			c, err := DialTimeout(cl.addr, cl.timeout)
			if err == nil {
				c.m = cl.m
				cl.m.redials.Inc()
				if old := s.conn.Swap(c); old != nil {
					old.Close()
				}
				if cl.closed.Load() {
					// Close ran while we were dialing and may have missed
					// the new conn; closing it here is idempotent either way.
					c.Close()
				}
				return
			}
			cl.m.redialFails.Inc()
			time.Sleep(backoff)
			if backoff *= 2; backoff > redialMaxBackoff {
				backoff = redialMaxBackoff
			}
		}
	}()
}

// Close closes every connection in the pool and stops background
// redials. It returns the first connection-close error encountered
// (nil in the common case); the remaining connections are still closed
// either way.
func (cl *Client) Close() error {
	cl.closed.Store(true)
	var first error
	for i := range cl.slots {
		if c := cl.slots[i].conn.Load(); c != nil {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Get returns the value stored for key and whether it exists.
func (cl *Client) Get(key int64) (int64, bool, error) { return cl.Conn().Get(key) }

// Put upserts the value for key and reports whether it was newly
// inserted.
func (cl *Client) Put(key, val int64) (bool, error) { return cl.Conn().Put(key, val) }

// PutTTL upserts the value for key with an absolute expiry epoch (unix
// seconds; 0: never expires) and reports whether it was newly inserted.
func (cl *Client) PutTTL(key, val, exp int64) (bool, error) { return cl.Conn().PutTTL(key, val, exp) }

// GetTTL returns the value and recorded absolute expiry (0: none) for
// key, and whether the key is live.
func (cl *Client) GetTTL(key int64) (val, exp int64, ok bool, err error) {
	return cl.Conn().GetTTL(key)
}

// Delete removes key and reports whether it was present.
func (cl *Client) Delete(key int64) (bool, error) { return cl.Conn().Delete(key) }

// PutBatch upserts every item in one request and returns the number of
// keys newly inserted.
func (cl *Client) PutBatch(items []Item) (int, error) { return cl.Conn().PutBatch(items) }

// GetBatch looks up every key in one request; values and presence
// flags align with keys.
func (cl *Client) GetBatch(keys []int64) ([]int64, []bool, error) { return cl.Conn().GetBatch(keys) }

// DeleteBatch removes every key in one request and returns the number
// that were present.
func (cl *Client) DeleteBatch(keys []int64) (int, error) { return cl.Conn().DeleteBatch(keys) }

// Range returns up to max items with lo <= key <= hi in ascending key
// order; more reports truncation (resume with lo = last key + 1).
func (cl *Client) Range(lo, hi int64, max int) ([]Item, bool, error) {
	return cl.Conn().Range(lo, hi, max)
}

// Len returns the number of keys in the database.
func (cl *Client) Len() (int, error) { return cl.Conn().Len() }

// Checkpoint commits a checkpoint; when it returns, every operation
// acknowledged on the chosen connection is on disk. For a barrier over
// operations issued through the whole pool, checkpoint after the
// operations' replies have been received.
func (cl *Client) Checkpoint() (uint64, error) { return cl.Conn().Checkpoint() }

// Ping round-trips a payload through the server on one connection.
func (cl *Client) Ping(payload []byte) error { return cl.Conn().Ping(payload) }
