// Package client is the Go client for hidbd, the network server over
// the durable history-independent database (see repro/internal/server
// and cmd/hidbd). It speaks the length-prefixed binary protocol of
// repro/internal/proto, documented in docs/PROTOCOL.md.
//
// Conn is one pipelined connection: any number of goroutines may issue
// requests on it concurrently, each request gets a fresh id, and a
// dedicated reader routes every reply — which may arrive out of request
// order — back to its caller. A dedicated writer coalesces concurrent
// requests into single flushes, so pipelining costs one syscall per
// burst, not per request. Client is a fixed-size pool of Conns with the
// same method set, spreading callers round-robin when one connection's
// reply stream would otherwise serialize them.
//
// The pool is self-healing. A Conn never recovers once its transport
// fails — in-flight and future calls on it return ErrConnClosed — but
// the Client detects broken members on the next selection, skips them
// in favor of live connections, and redials the dead slot in the
// background with exponential backoff (20ms doubling to a 1s cap)
// until the server is reachable again. The pool stays fixed-size
// (slots are replaced, never dropped or added) and never replays
// failed requests: callers see ErrConnClosed for work that was in
// flight when the connection died and decide idempotency themselves.
//
// Server-side ordering is program order per connection: a request
// issued after a reply was received is ordered after it, and a
// pipelined read is ordered after the same connection's in-flight
// writes. Checkpoint is a durability barrier: when it returns, every
// operation this connection has had acknowledged is on disk.
//
// Entries may carry a TTL: PutTTL writes an ABSOLUTE expiry epoch
// (unix seconds — callers resolve "30 seconds from now" themselves, so
// the wire carries state, never request timing) and GetTTL echoes it
// back. An entry whose expiry has passed reads as absent everywhere
// from the moment the epoch passes it; the server removes the bytes
// with its deterministic sweep.
//
// A connection may point at a read replica. Reads behave identically;
// mutating calls fail with an error matching both the ErrReadOnly
// sentinel (errors.Is — route the write to the primary) and a typed
// *proto.RemoteError with code ErrCodeReadOnly (errors.As). The
// SyncShardHashes and SyncShardChunk methods expose the replication
// opcodes replicas converge with (see repro/internal/replica).
package client
